(* The service-mode bench: evidence that the long-lived streaming
   scheduler is (1) memory-bounded, (2) fast enough to live in a request
   path, and (3) restartable without drift.

   Part 1 — streamed throughput: a Session fed just-in-time at steady
   load for >= 10k rounds.  Measures rounds/sec and, after a full major
   collection on both sides of the measured segment, the growth in live
   words per round.  The memory-boundedness contract (doc/SERVICE.md)
   says that growth is ~zero: the session retains pending jobs and
   policy state, never per-round history.  A hard acceptance check fails
   the bench if residency grows; the per-round metrics are also gated by
   benchdiff (analysis.alloc_* / analysis.*_rounds_per_sec rules).

   Part 2 — durability overhead: what a journal append and an atomic
   checkpoint commit cost, measured against the same streamed session.
   Wall-clock only (Info under the gate), recorded so drifts show up in
   review even though they never fail CI on machine noise.

   Part 3 — kill/restore drill: for every workload family, write the
   journal a server killed at round k would leave behind (header + ops,
   no checkpoint, no goodbye), restart a real Server.serve on it, finish
   the stream, and diff the final checkpoint against the uninterrupted
   batch Engine.run.  Any differing counter (round, executed, dropped,
   recolorings, reconfig cost, final cache) counts as a divergence;
   "divergences" is Exact-gated by benchdiff and the bench exits
   nonzero if it is not 0. *)

open Rrs_core
module Families = Rrs_workload.Families
module Stream = Rrs_workload.Arrival_stream
module Journal = Rrs_service.Journal
module Snapshot = Rrs_service.Snapshot
module Server = Rrs_service.Server
module Session = Engine.Session
module Sink = Rrs_obs.Sink

let rounds = ref 20_000
let warmup = ref 2_000
let colors = ref 64
let n = ref 8
let repeats = ref 3
let out = ref "BENCH_serve.json"

let spec =
  [
    ("--rounds", Arg.Set_int rounds, "INT measured streamed rounds (part 1)");
    ("--warmup", Arg.Set_int warmup, "INT rounds before measurement starts");
    ("--colors", Arg.Set_int colors, "INT color universe for the stream");
    ("--n", Arg.Set_int n, "INT online resources");
    ("--repeats", Arg.Set_int repeats, "INT best-of timing repetitions");
    ("--out", Arg.Set_string out, "FILE JSONL artifact path");
  ]

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "serve.exe: service-mode throughput, durability overhead, kill/restore \
     drill"

let failures : string list ref = ref []
let fail fmt = Printf.ksprintf (fun msg -> failures := msg :: !failures) fmt

(* ------------------------------------------------------------------ *)
(* Part 1: streamed throughput and memory residency                    *)
(* ------------------------------------------------------------------ *)

let steady_session () =
  Session.create (Engine.config ~n:!n ()) ~delta:4
    ~delay:(Array.make !colors 16) Lru_edf.policy

(* steady load: a few colors per round, rotating over the universe so
   the ranking structures see recolorings, not just a hot prefix *)
let feed_round session round =
  let c1 = round mod !colors and c2 = (3 * round + 1) mod !colors in
  ignore (Session.feed session ~round ~color:c1 ~count:3);
  if c2 <> c1 then ignore (Session.feed session ~round ~color:c2 ~count:2)

let stream_once () =
  let session = steady_session () in
  for round = 0 to !warmup - 1 do
    feed_round session round;
    Session.step session
  done;
  Gc.full_major ();
  let live0 = (Gc.stat ()).Gc.live_words in
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to !rounds - 1 do
    feed_round session (!warmup + i);
    Session.step session
  done;
  let seconds = Unix.gettimeofday () -. t0 in
  let minor_per_round = (Gc.minor_words () -. minor0) /. float_of_int !rounds in
  Gc.full_major ();
  let live1 = (Gc.stat ()).Gc.live_words in
  let executed = Session.executed session in
  ignore (Session.finish session);
  (seconds, live1 - live0, minor_per_round, executed)

let throughput () =
  print_endline
    "================================================================";
  Printf.printf " Streamed throughput (dlru-edf, %d colors, n=%d, %d rounds)\n"
    !colors !n !rounds;
  print_endline
    "================================================================";
  let best_seconds = ref infinity in
  let growth = ref 0 in
  let minor_per_round = ref 0.0 in
  for r = 1 to !repeats do
    let seconds, live_growth, minor, executed = stream_once () in
    if seconds < !best_seconds then best_seconds := seconds;
    if r = 1 then begin
      growth := live_growth;
      minor_per_round := minor;
      if executed = 0 then fail "streamed run executed nothing"
    end
  done;
  let per_round = float_of_int !growth /. float_of_int !rounds in
  let rps = float_of_int !rounds /. !best_seconds in
  Printf.printf "rounds/sec:        %.0f\n" rps;
  Printf.printf "minor words/round: %.1f\n" !minor_per_round;
  Printf.printf "live growth:       %d words over %d rounds (%.4f/round)\n"
    !growth !rounds per_round;
  (* the hard flatness contract: a 10k+ round stream must not retain
     per-round state.  One word per round of drift would already be a
     leak; allow slack for GC accounting noise. *)
  if per_round > 1.0 then
    fail "live words grew %.4f/round over %d rounds - per-round state is \
          being retained"
      per_round !rounds;
  (rps, per_round, !minor_per_round)

(* ------------------------------------------------------------------ *)
(* Part 2: durability overhead                                         *)
(* ------------------------------------------------------------------ *)

let temp_dir name =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rrs_bench_%s_%d" name (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let durability () =
  print_endline
    "================================================================";
  print_endline " Durability overhead (journal append, checkpoint commit)";
  print_endline
    "================================================================";
  let dir = temp_dir "durability" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let session = steady_session () in
  let header =
    {
      Journal.version = Journal.header_version;
      policy = "dlru-edf";
      n = !n;
      delta = 4;
      delay = Array.make !colors 16;
      mini_rounds = 1;
    }
  in
  let w = Journal.create (Filename.concat dir "journal.jsonl") header in
  let appends = 2_000 in
  let t0 = Unix.gettimeofday () in
  for round = 0 to (appends / 2) - 1 do
    let color = round mod !colors in
    ignore (Session.feed session ~round ~color ~count:2);
    Journal.append w (Journal.Submit { round; color; count = 2 });
    Session.step session;
    Journal.append w (Journal.Step 1)
  done;
  let append_seconds = (Unix.gettimeofday () -. t0) /. float_of_int appends in
  Journal.close w;
  let ckpt_path = Filename.concat dir "checkpoint.json" in
  let checkpoints = 200 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to checkpoints do
    (* the server's commit: serialize, write to a temp sibling, rename *)
    Sink.with_jsonl ckpt_path (fun sink ->
        Sink.write_line sink
          (Snapshot.to_line (Snapshot.of_session ~ops:i session)))
  done;
  let checkpoint_seconds =
    (Unix.gettimeofday () -. t0) /. float_of_int checkpoints
  in
  ignore (Session.finish session);
  Printf.printf "journal append:    %.2f us/op\n" (append_seconds *. 1e6);
  Printf.printf "checkpoint commit: %.2f us (%d-color state)\n"
    (checkpoint_seconds *. 1e6) !colors;
  (append_seconds, checkpoint_seconds)

(* ------------------------------------------------------------------ *)
(* Part 3: kill/restore drill                                          *)
(* ------------------------------------------------------------------ *)

let run_server config script =
  let in_path = Filename.temp_file "serve_in" ".txt" in
  let out_path = Filename.temp_file "serve_out" ".txt" in
  Out_channel.with_open_text in_path (fun oc -> output_string oc script);
  let ic = In_channel.open_text in_path in
  let oc = Out_channel.open_text out_path in
  let code = Server.serve config ic oc in
  In_channel.close ic;
  Out_channel.close oc;
  let output = In_channel.with_open_text out_path In_channel.input_lines in
  Sys.remove in_path;
  Sys.remove out_path;
  (code, output)

let submit_ops instance =
  let stream = Stream.of_instance instance in
  let rec collect acc =
    match Stream.next stream with
    | None -> List.rev acc
    | Some (round, batch) ->
        collect
          (List.rev_append
             (List.map
                (fun (color, count) -> Journal.Submit { round; color; count })
                batch)
             acc)
  in
  collect []

let drill_family id =
  let f = Option.get (Families.find id) in
  let instance = f.build ~seed:1 in
  let horizon = instance.Instance.horizon in
  let k = max 1 ((horizon + 1) / 2) in
  let dir = temp_dir ("drill_" ^ id) in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let header =
    {
      Journal.version = Journal.header_version;
      policy = "dlru-edf";
      n = !n;
      delta = instance.Instance.delta;
      delay = Array.copy instance.Instance.delay;
      mini_rounds = 1;
    }
  in
  let w = Journal.create (Filename.concat dir "journal.jsonl") header in
  List.iter (fun op -> Journal.append w op) (submit_ops instance);
  Journal.append w (Journal.Step k);
  Journal.close w;
  let config =
    {
      Server.default_config with
      n = !n;
      delta = instance.Instance.delta;
      delay = Array.copy instance.Instance.delay;
      checkpoint_dir = Some dir;
      checkpoint_every = 0;
    }
  in
  let t0 = Unix.gettimeofday () in
  let code, output =
    run_server config (Printf.sprintf "step %d\nquit\n" (horizon + 1 - k))
  in
  let seconds = Unix.gettimeofday () -. t0 in
  let divergences = ref 0 in
  let diverge fmt =
    Printf.ksprintf
      (fun msg ->
        incr divergences;
        fail "%s: %s" id msg)
      fmt
  in
  if code <> 0 then diverge "restored server exited %d" code;
  (match output with
  | first :: _
    when String.length first >= 11 && String.sub first 0 11 = "ok restored" ->
      ()
  | first :: _ -> diverge "expected a restore greeting, got %S" first
  | [] -> diverge "no server output");
  (match
     In_channel.with_open_text
       (Filename.concat dir "checkpoint.json")
       In_channel.input_line
   with
  | exception Sys_error msg -> diverge "no final checkpoint: %s" msg
  | None -> diverge "empty final checkpoint"
  | Some line -> (
      match Snapshot.of_line line with
      | Error e -> diverge "unreadable final checkpoint: %s" e
      | Ok snapshot ->
          let batch = Engine.run (Engine.config ~n:!n ()) instance Lru_edf.policy in
          let check name expected actual =
            if expected <> actual then
              diverge "%s: batch %d, restored %d" name expected actual
          in
          check "round" (horizon + 1) snapshot.Snapshot.round;
          check "executed" batch.Engine.executed snapshot.Snapshot.executed;
          check "dropped" batch.Engine.dropped snapshot.Snapshot.dropped;
          check "recolorings" batch.Engine.reconfigurations
            snapshot.Snapshot.reconfigurations;
          check "reconfig_cost" batch.Engine.cost.Cost.reconfig
            snapshot.Snapshot.reconfig_cost;
          check "pending" 0 snapshot.Snapshot.pending_jobs;
          if snapshot.Snapshot.cache <> batch.Engine.final_cache then
            diverge "final cache differs"));
  (!divergences, seconds, horizon + 1)

let restore_drill () =
  print_endline
    "================================================================";
  print_endline " Kill/restore drill (journal replay vs batch, all families)";
  print_endline
    "================================================================";
  let ids = Families.ids () in
  let divergences = ref 0 in
  let restore_seconds = ref 0.0 in
  let rounds_replayed = ref 0 in
  List.iter
    (fun id ->
      let d, seconds, rounds = drill_family id in
      divergences := !divergences + d;
      restore_seconds := !restore_seconds +. seconds;
      rounds_replayed := !rounds_replayed + rounds;
      Printf.printf "%-16s %s (%.1f ms, %d rounds)\n" id
        (if d = 0 then "identical" else Printf.sprintf "%d DIVERGENCES" d)
        (seconds *. 1e3) rounds)
    ids;
  (!divergences, !restore_seconds, List.length ids, !rounds_replayed)

(* ------------------------------------------------------------------ *)

let () =
  let t0 = Unix.gettimeofday () in
  let rps, live_growth_per_round, minor_per_round = throughput () in
  let append_seconds, checkpoint_seconds = durability () in
  let divergences, restore_seconds, families, rounds_replayed =
    restore_drill ()
  in
  Out_channel.with_open_text !out (fun oc ->
      let write = Rrs_obs.Run_summary.write oc in
      write
        (Rrs_obs.Run_summary.make ~id:"serve-throughput" ~kind:"bench"
           ~config:
             [
               ("policy", "dlru-edf");
               ("colors", string_of_int !colors);
               ("n", string_of_int !n);
               ("rounds", string_of_int !rounds);
               ("warmup", string_of_int !warmup);
             ]
           ~analysis:
             [
               ("stream_rounds_per_sec", rps);
               ("alloc_live_growth_words_per_round", live_growth_per_round);
               ("alloc_minor_words_per_round", minor_per_round);
             ]
           ~timings:
             [
               {
                 Rrs_obs.Run_summary.phase = "stream";
                 seconds = float_of_int !rounds /. rps;
                 count = !repeats;
               };
             ]
           ());
      write
        (Rrs_obs.Run_summary.make ~id:"serve-durability" ~kind:"bench"
           ~config:[ ("colors", string_of_int !colors) ]
           ~analysis:
             [
               ("journal_append_seconds", append_seconds);
               ("checkpoint_seconds", checkpoint_seconds);
             ]
           ());
      write
        (Rrs_obs.Run_summary.make ~id:"serve-restore" ~kind:"bench"
           ~config:
             [ ("policy", "dlru-edf"); ("kill_at", "half the horizon") ]
           ~analysis:
             [
               ("divergences", float_of_int divergences);
               ("families", float_of_int families);
               ("rounds_replayed", float_of_int rounds_replayed);
               ("restore_seconds", restore_seconds);
             ]
           ()));
  (match Rrs_obs.Run_summary.load !out with
  | Ok summaries when List.length summaries = 3 -> ()
  | Ok summaries ->
      fail "%s holds %d summaries, expected 3" !out (List.length summaries)
  | Error msg -> fail "%s unreadable: %s" !out msg);
  Printf.printf "bench finished in %.1f s\n" (Unix.gettimeofday () -. t0);
  Printf.printf "run summaries written to %s\n" !out;
  match List.rev !failures with
  | [] -> print_endline "serve bench: all acceptance checks passed"
  | msgs ->
      List.iter (fun m -> Printf.eprintf "FAIL: %s\n" m) msgs;
      exit 1
