(* The benchmark harness.

   Part 1 regenerates every experiment of the reproduction (the paper has
   no tables/figures of its own; each experiment id maps to a theorem,
   lemma or appendix construction — see DESIGN.md §5 and EXPERIMENTS.md).

   Part 2 runs Bechamel microbenchmarks for the engineering-side
   questions: engine throughput per policy, reduction overhead, and the
   hot data structures. *)

open Bechamel
open Rrs_core
module Families = Rrs_workload.Families
module Adv = Rrs_workload.Adversarial
module Rng = Rrs_prng.Rng

(* ------------------------------------------------------------------ *)
(* Part 1: experiments                                                 *)
(* ------------------------------------------------------------------ *)

(* Every experiment also appends its canonical run_summary line to the
   JSONL artifact (BENCH_obs.json), so a bench run leaves a
   machine-readable record next to the printed log. *)
let run_experiments oc =
  print_endline "================================================================";
  print_endline " Reproduction experiments (one per paper claim; DESIGN.md §5)";
  print_endline "================================================================";
  List.iter
    (fun id ->
      match Rrs_experiments.Registry.run_summarized id with
      | Some { Rrs_experiments.Registry.outcome; summary; _ } ->
          Rrs_experiments.Harness.print outcome;
          Rrs_obs.Run_summary.write oc summary
      | None -> ())
    (Rrs_experiments.Registry.ids ())

(* The whole-suite parallelism question: the 13 experiments spread over
   N domains (their inner sweeps then degrade to sequential — see the
   nesting note in Rrs_parallel.Pool) against a fully sequential run of
   the same suite on the same seeds.  Domain-safe telemetry is what
   makes the parallel run legitimate: both passes produce identical
   cost totals, so the record compares equal work.  Both passes run
   after [run_experiments], i.e. equally warm. *)
let parallel_speedup oc =
  print_endline "================================================================";
  print_endline " Parallel experiment suite (sequential vs N-domain wall time)";
  print_endline "================================================================";
  let ids = Rrs_experiments.Registry.ids () in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq_results, seq_seconds =
    timed (fun () ->
        Rrs_parallel.Pool.sequential (fun () ->
            Rrs_experiments.Registry.run_many ~jobs:1 ids))
  in
  let jobs = Rrs_parallel.Pool.num_domains () in
  let par_results, par_seconds =
    timed (fun () -> Rrs_experiments.Registry.run_many ~jobs ids)
  in
  let identical =
    List.for_all2
      (fun (_, a) (_, b) ->
        match (a, b) with
        | ( Ok { Rrs_experiments.Registry.summary = a; _ },
            Ok { Rrs_experiments.Registry.summary = b; _ } ) ->
            Rrs_obs.Run_summary.(
              to_line (strip_timings a) = to_line (strip_timings b))
        | _ -> false)
      seq_results par_results
  in
  if not identical then
    print_endline "WARNING: parallel artifacts diverge from sequential!";
  let speedup = seq_seconds /. par_seconds in
  Printf.printf "sequential: %.3f s\n%d domains:  %.3f s  (speedup %.2fx)\n"
    seq_seconds jobs par_seconds speedup;
  Rrs_obs.Run_summary.write oc
    (Rrs_obs.Run_summary.make ~id:"parallel-speedup" ~kind:"bench"
       ~config:
         [
           ("experiments", string_of_int (List.length ids));
           ("jobs", string_of_int jobs);
           ("artifacts_identical", if identical then "true" else "false");
         ]
       ~analysis:
         [
           ("sequential_seconds", seq_seconds);
           ("parallel_seconds", par_seconds);
           ("speedup", speedup);
           ("jobs", float_of_int jobs);
         ]
       ~timings:
         [
           {
             Rrs_obs.Run_summary.phase = "sequential";
             seconds = seq_seconds;
             count = List.length ids;
           };
           {
             Rrs_obs.Run_summary.phase = "parallel";
             seconds = par_seconds;
             count = List.length ids;
           };
         ]
       ())

(* ------------------------------------------------------------------ *)
(* Part 2: microbenchmarks                                             *)
(* ------------------------------------------------------------------ *)

let uniform_instance =
  (Option.get (Families.find "uniform")).build ~seed:1

let router_instance = (Option.get (Families.find "router")).build ~seed:1

let oversized_instance =
  (Option.get (Families.find "oversized")).build ~seed:1

let unbatched_instance =
  (Option.get (Families.find "unbatched")).build ~seed:1

let adversarial_instance =
  Adv.dlru_instance { n = 8; delta = 2; j = 5; k = 7 }

let bench_policy name instance factory =
  Test.make ~name (Staged.stage (fun () ->
      ignore (Engine.run (Engine.config ~n:8 ()) instance factory)))

let engine_tests =
  Test.make_grouped ~name:"engine"
    [
      bench_policy "lru-edf/uniform" uniform_instance Lru_edf.policy;
      bench_policy "lru-edf/router" router_instance Lru_edf.policy;
      bench_policy "lru-edf/adversarial" adversarial_instance Lru_edf.policy;
      bench_policy "dlru/uniform" uniform_instance Delta_lru.policy;
      bench_policy "edf/uniform" uniform_instance Edf_policy.policy;
      bench_policy "static/uniform" uniform_instance (Static_policy.static [ 0 ]);
      bench_policy "greedy-backlog/uniform" uniform_instance
        Naive_policies.greedy_backlog;
      Test.make ~name:"par-edf/uniform"
        (Staged.stage (fun () -> ignore (Par_edf.run uniform_instance ~m:2)));
    ]

let reduction_tests =
  (* constructive transformations need a recorded input schedule *)
  let offline_input =
    let cfg = Engine.config ~n:2 ~record_schedule:true () in
    let r =
      Engine.run cfg uniform_instance
        (Offline_heuristics.interval_plan uniform_instance ~m:2 ~window:16)
    in
    Option.get r.schedule
  in
  let aggregate_mapping = Distribute.transform uniform_instance in
  Test.make_grouped ~name:"reductions"
    [
      Test.make ~name:"distribute/transform"
        (Staged.stage (fun () ->
             ignore (Distribute.transform oversized_instance)));
      Test.make ~name:"distribute/full-run"
        (Staged.stage (fun () -> ignore (Distribute.run oversized_instance ~n:8)));
      Test.make ~name:"varbatch/transform"
        (Staged.stage (fun () -> ignore (Var_batch.transform unbatched_instance)));
      Test.make ~name:"varbatch/full-run"
        (Staged.stage (fun () -> ignore (Var_batch.run unbatched_instance ~n:8)));
      Test.make ~name:"aggregate/transform"
        (Staged.stage (fun () ->
             ignore
               (Aggregate.transform uniform_instance ~mapping:aggregate_mapping
                  offline_input)));
      Test.make ~name:"punctual/transform"
        (Staged.stage (fun () ->
             ignore (Punctual.make_punctual uniform_instance offline_input)));
    ]

let dstruct_tests =
  let heap_input = Array.init 1024 (fun i -> (i * 7919) mod 1024) in
  Test.make_grouped ~name:"dstruct"
    [
      Test.make ~name:"binary-heap/1k-push-pop"
        (Staged.stage (fun () ->
             let h = Rrs_dstruct.Binary_heap.create ~cmp:compare () in
             Array.iter (Rrs_dstruct.Binary_heap.add h) heap_input;
             while not (Rrs_dstruct.Binary_heap.is_empty h) do
               ignore (Rrs_dstruct.Binary_heap.pop_min h)
             done));
      Test.make ~name:"indexed-heap/1k-update-pop"
        (Staged.stage (fun () ->
             let h = Rrs_dstruct.Indexed_heap.create ~cmp:compare ~capacity:1024 in
             Array.iteri (fun k p -> Rrs_dstruct.Indexed_heap.update h k p) heap_input;
             Array.iteri (fun k p -> Rrs_dstruct.Indexed_heap.update h k (p * 3 mod 1024)) heap_input;
             while not (Rrs_dstruct.Indexed_heap.is_empty h) do
               ignore (Rrs_dstruct.Indexed_heap.pop_min h)
             done));
      Test.make ~name:"fenwick/1k-add-search"
        (Staged.stage (fun () ->
             let f = Rrs_dstruct.Fenwick.create ~size:1024 in
             Array.iter (fun v -> Rrs_dstruct.Fenwick.add f v 1) heap_input;
             for k = 1 to 512 do
               ignore (Rrs_dstruct.Fenwick.search f k)
             done));
    ]

let workload_tests =
  Test.make_grouped ~name:"workload"
    [
      Test.make ~name:"generate/uniform"
        (Staged.stage (fun () ->
             ignore ((Option.get (Families.find "uniform")).build ~seed:3)));
      Test.make ~name:"generate/datacenter"
        (Staged.stage (fun () ->
             ignore ((Option.get (Families.find "datacenter")).build ~seed:3)));
      Test.make ~name:"prng/zipf-4k"
        (Staged.stage (fun () ->
             let rng = Rng.create ~seed:9 in
             for _ = 1 to 4096 do
               ignore (Rng.zipf rng ~n:64 ~s:1.1)
             done));
    ]

let run_microbenchmarks () =
  print_endline "================================================================";
  print_endline " Bechamel microbenchmarks (ns per run, OLS on monotonic clock)";
  print_endline "================================================================";
  let all_tests =
    Test.make_grouped ~name:"rrs"
      [ engine_tests; reduction_tests; dstruct_tests; workload_tests ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let table = Rrs_report.Table.create ~columns:[ "benchmark"; "time/run" ] in
  List.iter
    (fun (name, ols) ->
      let cell =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) ->
            if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
            else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
            else Printf.sprintf "%.0f ns" t
        | Some [] | None -> "n/a"
      in
      Rrs_report.Table.add_row table [ name; cell ])
    (List.sort compare rows);
  Rrs_report.Table.print table

(* ------------------------------------------------------------------ *)
(* Part 3: tracing overhead                                            *)
(* ------------------------------------------------------------------ *)

(* The hard requirement on the observability layer: with the default
   Sink.null the engine pays one branch per potential event and no
   allocation, so the hot path must not regress.  We time the same
   engine run against the null sink and against a memory sink (every
   event materialised) and report both, plus their ratio, in the
   artifact.  Best-of-[repeats] wall time suppresses scheduler noise. *)
let sink_overhead oc =
  print_endline "================================================================";
  print_endline " Tracing overhead (null sink vs memory sink, dlru-edf/router)";
  print_endline "================================================================";
  let repeats = 10 in
  let best_of f =
    let best = ref infinity in
    for _ = 1 to repeats do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let run sink =
    ignore (Engine.run (Engine.config ~n:8 ~sink ()) router_instance Lru_edf.policy)
  in
  let null_seconds = best_of (fun () -> run Rrs_obs.Sink.null) in
  let events = ref 0 in
  let memory_seconds =
    best_of (fun () ->
        let sink = Rrs_obs.Sink.memory () in
        run sink;
        events := Rrs_obs.Sink.count sink)
  in
  let overhead_pct = (memory_seconds -. null_seconds) /. null_seconds *. 100. in
  Printf.printf "null sink:   %.3f ms/run\n" (null_seconds *. 1e3);
  Printf.printf "memory sink: %.3f ms/run (%d events, %+.1f%%)\n"
    (memory_seconds *. 1e3) !events overhead_pct;
  Rrs_obs.Run_summary.write oc
    (Rrs_obs.Run_summary.make ~id:"sink-overhead" ~kind:"bench"
       ~config:
         [
           ("family", "router");
           ("policy", "dlru-edf");
           ("n", "8");
           ("repeats", string_of_int repeats);
         ]
       ~analysis:
         [
           ("null_seconds", null_seconds);
           ("memory_seconds", memory_seconds);
           ("overhead_pct", overhead_pct);
           ("events", float_of_int !events);
         ]
       ~timings:
         [
           { Rrs_obs.Run_summary.phase = "null"; seconds = null_seconds; count = repeats };
           {
             Rrs_obs.Run_summary.phase = "memory";
             seconds = memory_seconds;
             count = repeats;
           };
         ]
       ());
  null_seconds

(* The live-telemetry plane (flight recorder ring + heartbeat
   accounting) must cost no more than full tracing: the recorder is a
   bounded overwrite of what the memory sink retains unboundedly, and
   the heartbeat adds integer accumulation per round plus one beat
   every [every_rounds].  Timed against the same run as above; the
   null-sink baseline is shared so the percentages are comparable. *)
let live_telemetry_overhead oc ~null_seconds =
  print_endline "================================================================";
  print_endline " Live telemetry overhead (flight recorder + heartbeat)";
  print_endline "================================================================";
  let repeats = 10 in
  let best_of f =
    let best = ref infinity in
    for _ = 1 to repeats do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let events = ref 0 in
  let recorder_seconds =
    best_of (fun () ->
        let r = Rrs_obs.Flight_recorder.create () in
        ignore
          (Engine.run
             (Engine.config ~n:8 ~sink:(Rrs_obs.Flight_recorder.sink r) ())
             router_instance Lru_edf.policy);
        events := Rrs_obs.Flight_recorder.events_recorded r)
  in
  let beats = ref 0 in
  let both_seconds =
    best_of (fun () ->
        let r = Rrs_obs.Flight_recorder.create () in
        let hb = Rrs_obs.Heartbeat.create ~every_rounds:64 () in
        ignore
          (Engine.run
             (Engine.config ~n:8
                ~sink:(Rrs_obs.Flight_recorder.sink r)
                ~heartbeat:hb ())
             router_instance Lru_edf.policy);
        beats := Rrs_obs.Heartbeat.beats hb)
  in
  let pct x = (x -. null_seconds) /. null_seconds *. 100. in
  Printf.printf "recorder sink:        %.3f ms/run (%d events, %+.1f%%)\n"
    (recorder_seconds *. 1e3) !events (pct recorder_seconds);
  Printf.printf "recorder + heartbeat: %.3f ms/run (%d beats, %+.1f%%)\n"
    (both_seconds *. 1e3) !beats (pct both_seconds);
  Rrs_obs.Run_summary.write oc
    (Rrs_obs.Run_summary.make ~id:"live-telemetry-overhead" ~kind:"bench"
       ~config:
         [
           ("family", "router");
           ("policy", "dlru-edf");
           ("n", "8");
           ("repeats", string_of_int repeats);
           ("heartbeat_every", "64");
         ]
       ~analysis:
         [
           ("null_seconds", null_seconds);
           ("recorder_seconds", recorder_seconds);
           ("recorder_heartbeat_seconds", both_seconds);
           ("recorder_overhead_pct", pct recorder_seconds);
           ("recorder_heartbeat_overhead_pct", pct both_seconds);
           ("events", float_of_int !events);
           ("beats", float_of_int !beats);
         ]
       ~timings:
         [
           {
             Rrs_obs.Run_summary.phase = "recorder";
             seconds = recorder_seconds;
             count = repeats;
           };
           {
             Rrs_obs.Run_summary.phase = "recorder_heartbeat";
             seconds = both_seconds;
             count = repeats;
           };
         ]
       ())

let () =
  Out_channel.with_open_text "BENCH_obs.json" (fun oc ->
      run_experiments oc;
      parallel_speedup oc;
      run_microbenchmarks ();
      let null_seconds = sink_overhead oc in
      live_telemetry_overhead oc ~null_seconds);
  print_endline "run summaries written to BENCH_obs.json";
  print_endline "bench: done"
