(* The crash-consistency torture campaign.

   Part 1 mutates durable state offline through Rrs_service.Torture:
   journal truncation at every byte boundary, a byte flip at every
   offset, every op line duplicated, and the same for checkpoint.json
   — every case must be contained (recovered on the documented tier or
   refused with a diagnostic) and divergence-free (a successful restore
   equals the straight line of the ops the mutated journal holds).

   Part 2 drills kills end to end over the socket: for every op k a
   child process (this executable re-exec'd with --child-serve) serves
   a Unix-domain socket with --crash-after k semantics; the parent
   streams the op script, counts acks until the connection dies, then
   restores the directory and requires every acked op to have survived
   into the journal.

   Part 3 is the overload drill: concurrent clients (one killed
   mid-stream, one slow reader) hammer one shared session under tight
   queue bounds; busy/shed/slow-drop counters must move, the loop must
   survive, and after shutdown the journal must hold at least every
   acked op and restore cleanly.

   Part 4 times recovery: cold restore of a long journal, and the same
   with a torn tail.

   Everything lands in BENCH_torture.json as run_summary lines; the
   campaign records carry Exact-gated cases/contained/uncontained/
   divergences counts.  Exit status is nonzero if any acceptance check
   fails. *)

module Torture = Rrs_service.Torture
module Server = Rrs_service.Server
module Transport = Rrs_service.Transport
module Protocol = Rrs_service.Protocol
module Journal = Rrs_service.Journal
module Snapshot = Rrs_service.Snapshot

let failures : string list ref = ref []
let fail fmt = Printf.ksprintf (fun msg -> failures := msg :: !failures) fmt

let config =
  {
    Server.default_config with
    n = 4;
    delta = 2;
    delay = Array.make 4 6;
    checkpoint_every = 8;
  }

let colors = 4
let seed = 7

let scratch =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "rrs_torture_%d" (Unix.getpid ()))

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let fresh_dir name =
  let dir = Filename.concat scratch name in
  rm_rf dir;
  let rec mk d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk dir;
  dir

let command_of_op = function
  | Journal.Submit { round; color; count } ->
      Printf.sprintf "submit %d %d %d" round color count
  | Journal.Step k -> Printf.sprintf "step %d" k
  | Journal.Reconfigure { delta; n; delay } ->
      Protocol.command_to_string (Protocol.Reconfigure { delta; n; delay })

let is_mutation_ack line =
  let prefixes = [ "ok submitted"; "ok stepped"; "ok reconfigured" ] in
  List.exists
    (fun p ->
      String.length line >= String.length p
      && String.sub line 0 (String.length p) = p)
    prefixes

(* ------------------------------------------------------------------ *)
(* part 1: offline mutation campaigns                                  *)
(* ------------------------------------------------------------------ *)

let report_campaign name verdicts =
  let s = Torture.summarize verdicts in
  List.iter
    (fun (v : Torture.verdict) ->
      if not v.contained then
        fail "%s: %s uncontained: %s" name v.case v.detail
      else if v.diverged then fail "%s: %s diverged: %s" name v.case v.detail)
    verdicts;
  Printf.printf
    "%-20s %4d cases: %d contained, %d diverged (tiers %d/%d/%d/%d)\n%!" name
    s.cases s.contained s.divergences s.tiers.(0) s.tiers.(1) s.tiers.(2)
    s.tiers.(3);
  s

let offline_campaigns () =
  let ops = Torture.ops_of_seed ~colors seed in
  let run name campaign =
    report_campaign name (campaign config ~ops ~dir:(fresh_dir name))
  in
  let truncate = run "journal-truncate" (Torture.journal_truncate_campaign ?stride:None) in
  let flip = run "journal-flip" (Torture.journal_flip_campaign ?stride:None) in
  let dup = run "journal-dup" Torture.journal_dup_campaign in
  let ckpt = run "checkpoint" (Torture.checkpoint_campaign ?stride:None) in
  let prefixes = run "kill-prefix" (Torture.prefix_campaign ~torn:false) in
  let torn = run "kill-prefix-torn" (Torture.prefix_campaign ~torn:true) in
  (truncate, flip, dup, ckpt, prefixes, torn)

(* ------------------------------------------------------------------ *)
(* part 2: kill-at-every-op over the socket                            *)
(* ------------------------------------------------------------------ *)

let child_serve sock dir crash_after =
  let config =
    {
      config with
      Server.checkpoint_dir = Some dir;
      crash_after = Some crash_after;
    }
  in
  match Transport.run config (Transport.Unix_socket sock) with
  | Ok _ -> exit 0
  | Error e ->
      prerr_endline ("child-serve: " ^ e);
      exit 1

let connect_retry path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go n =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 0 ->
        Unix.sleepf 0.02;
        go (n - 1)
  in
  go 250

let kill_drill ops k =
  let dir = fresh_dir (Printf.sprintf "kill-%d" k) in
  let sock = Filename.concat dir "drill.sock" in
  let state = Filename.concat dir "state" in
  Unix.mkdir state 0o755;
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "--child-serve"; sock; state; string_of_int k |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let acked = ref 0 in
  let verdict =
    match connect_retry sock with
    | exception _ ->
        ignore (Unix.waitpid [] pid);
        Torture.
          {
            case = Printf.sprintf "socket-kill@%d" k;
            tier = 0;
            contained = false;
            diverged = false;
            detail = "could not connect";
          }
    | fd ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (match In_channel.input_line ic with
        | Some _greeting -> ()
        | None -> ());
        (try
           List.iter
             (fun op ->
               output_string oc (command_of_op op);
               output_char oc '\n';
               flush oc;
               match In_channel.input_line ic with
               | Some line when is_mutation_ack line -> incr acked
               | Some _ -> ()
               | None -> raise Exit)
             ops
         with Exit | Sys_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        let _, status = Unix.waitpid [] pid in
        (match status with
        | Unix.WEXITED 70 -> ()
        | Unix.WEXITED c -> fail "socket-kill@%d: child exited %d, want 70" k c
        | _ -> fail "socket-kill@%d: child died abnormally" k);
        let v =
          Torture.restore_case
            ~case:(Printf.sprintf "socket-kill@%d" k)
            config state
        in
        (* ack-after-log: every acked op must have survived the kill *)
        (match Journal.load (Filename.concat state "journal.jsonl") with
        | Ok (_, journaled, _) ->
            if List.length journaled < !acked then
              fail "socket-kill@%d: %d acked but only %d journaled" k !acked
                (List.length journaled)
            else if List.length journaled <> k then
              fail "socket-kill@%d: journal holds %d ops, want exactly %d" k
                (List.length journaled) k
        | Error e ->
            fail "socket-kill@%d: journal unreadable: %s" k
              (Journal.describe_load_error ~path:"journal.jsonl" e));
        v
  in
  rm_rf dir;
  verdict

let socket_kill_campaign () =
  let ops = Torture.ops_of_seed ~colors seed in
  let n = List.length ops in
  let verdicts = List.init n (fun i -> kill_drill ops (i + 1)) in
  report_campaign "socket-kill" verdicts

(* ------------------------------------------------------------------ *)
(* part 3: overload drill                                              *)
(* ------------------------------------------------------------------ *)

let overload_drill () =
  let dir = fresh_dir "overload" in
  let sock = Filename.concat dir "overload.sock" in
  let state = Filename.concat dir "state" in
  Unix.mkdir state 0o755;
  let limits =
    {
      Transport.default_limits with
      queue_limit = 4;
      (* below queue_limit: every client here shares one session, so
         the total backlog is bounded by the per-session admission
         limit and shedding only engages underneath it *)
      shed_threshold = 2;
      write_stall_timeout = 0.3;
      write_buffer_limit = 1 lsl 14;
    }
  in
  let stop = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Transport.run ~limits
          ~stop:(fun () -> Atomic.get stop)
          { config with Server.checkpoint_dir = Some state }
          (Transport.Unix_socket sock))
  in
  let total_acked = Atomic.make 0 in
  let total_busy = Atomic.make 0 in
  let uncontained = ref 0 in
  let hammer ~bursty id =
    match connect_retry sock with
    | exception e ->
        incr uncontained;
        fail "overload client %d: connect: %s" id (Printexc.to_string e)
    | fd ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        ignore (In_channel.input_line ic);
        let pending = ref 0 in
        let drain_one () =
          match In_channel.input_line ic with
          | Some line ->
              decr pending;
              if is_mutation_ack line then Atomic.incr total_acked
              else if String.length line >= 4 && String.sub line 0 4 = "busy"
              then Atomic.incr total_busy
          | None -> raise Exit
        in
        (try
           for i = 1 to 40 do
             output_string oc
               (Printf.sprintf "submit %d 1\n" (((id * 40) + i) mod colors));
             flush oc;
             incr pending;
             (* bursty clients pipeline 8 deep to trip admission
                control; smooth ones stay in lockstep *)
             if (not bursty) || !pending >= 8 then drain_one ();
             if i mod 10 = 0 then begin
               output_string oc "state\n";
               flush oc;
               incr pending;
               drain_one ()
             end
           done;
           while !pending > 0 do
             drain_one ()
           done;
           output_string oc "quit\n";
           flush oc;
           ignore (In_channel.input_line ic)
         with
        | Exit -> ()
        | e ->
            incr uncontained;
            fail "overload client %d: %s" id (Printexc.to_string e));
        try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let clients =
    [
      Domain.spawn (fun () -> hammer ~bursty:false 1);
      Domain.spawn (fun () -> hammer ~bursty:true 2);
      Domain.spawn (fun () -> hammer ~bursty:true 3);
    ]
  in
  (* the rude client: submit, vanish without reading a byte *)
  (match connect_retry sock with
  | fd ->
      let oc = Unix.out_channel_of_descr fd in
      output_string oc "submit 0 1 2\nsubmit 0 2 1\n";
      (try flush oc with Sys_error _ -> ());
      Unix.close fd
  | exception e -> fail "rude client: %s" (Printexc.to_string e));
  (* the slow reader: flood commands without reading a single reply.
     Most are refused at admission, but ~45 bytes of busy reply each
     still have to go somewhere: once the kernel socket buffer is full
     the server's per-conn write buffer hits its bound and the
     slow-client policy must drop the connection *)
  (match connect_retry sock with
  | fd ->
      let oc = Unix.out_channel_of_descr fd in
      (try
         for _ = 1 to 50_000 do
           output_string oc "state\n"
         done;
         flush oc;
         Unix.sleepf 0.5
       with Sys_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception e -> fail "slow client: %s" (Printexc.to_string e));
  List.iter Domain.join clients;
  Atomic.set stop true;
  let stats =
    match Domain.join server with
    | Ok stats -> stats
    | Error e ->
        incr uncontained;
        fail "overload server: %s" e;
        {
          Transport.conns_accepted = 0;
          conns_dropped = 0;
          commands = 0;
          busy = 0;
          shed = 0;
          slow_drops = 0;
          wedges = 0;
        }
  in
  let journaled =
    match Journal.load (Filename.concat state "journal.jsonl") with
    | Ok (_, ops, _) -> List.length ops
    | Error e ->
        incr uncontained;
        fail "overload journal: %s"
          (Journal.describe_load_error ~path:"journal.jsonl" e);
        0
  in
  (* ack-after-log under pressure: an acked op may never be dropped,
     though journaled-but-unacked ops are expected (killed clients) *)
  if journaled < Atomic.get total_acked then
    fail "overload: %d acked but only %d journaled" (Atomic.get total_acked)
      journaled;
  let restore = Torture.restore_case ~case:"overload-restore" config state in
  if not restore.Torture.contained then
    fail "overload restore: %s" restore.Torture.detail;
  if stats.Transport.slow_drops < 1 then
    fail "overload: slow reader was never dropped (slow_drops=%d)"
      stats.Transport.slow_drops;
  Printf.printf
    "overload: %d acked / %d journaled; busy=%d shed=%d slow_drops=%d \
     dropped=%d conns=%d\n%!"
    (Atomic.get total_acked) journaled stats.Transport.busy
    stats.Transport.shed stats.Transport.slow_drops
    stats.Transport.conns_dropped stats.Transport.conns_accepted;
  rm_rf dir;
  (stats, Atomic.get total_acked, journaled, !uncontained, restore)

(* ------------------------------------------------------------------ *)
(* part 4: recovery timing                                             *)
(* ------------------------------------------------------------------ *)

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let t0 = Unix.gettimeofday () in
    f ();
    best := min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let recovery_timing () =
  let ops = Torture.ops_of_seed ~count:2000 ~colors 11 in
  let dir = fresh_dir "timing" in
  Torture.build_fixture config ops dir;
  let clean =
    best_of 3 (fun () ->
        let v = Torture.restore_case ~case:"timing" config dir in
        if not v.Torture.contained then fail "timing restore: %s" v.detail)
  in
  (* now tear the tail and measure the tier-1 path (which truncates
     the tear away — re-tear before each repetition) *)
  let jpath = Filename.concat dir "journal.jsonl" in
  let tear () =
    let oc =
      Out_channel.open_gen [ Open_append; Open_text ] 0o644 jpath
    in
    output_string oc "{\"type\":\"serve_op\",\"op\":\"subm";
    Out_channel.close oc
  in
  let torn =
    best_of 3 (fun () ->
        tear ();
        let v = Torture.restore_case ~case:"timing-torn" config dir in
        if not (v.Torture.contained && v.Torture.tier = 1) then
          fail "timing torn restore: tier %d (%s)" v.Torture.tier v.detail)
  in
  rm_rf dir;
  Printf.printf "recovery: clean %.1f ms, torn tail %.1f ms (2000 ops)\n%!"
    (clean *. 1e3) (torn *. 1e3);
  (clean, torn)

(* ------------------------------------------------------------------ *)

let summary_analysis (s : Torture.summary) =
  [
    ("cases", float_of_int s.cases);
    ("contained", float_of_int s.contained);
    ("uncontained", float_of_int s.uncontained);
    ("divergences", float_of_int s.divergences);
    ("tier_clean", float_of_int s.tiers.(0));
    ("tier_torn_tail", float_of_int s.tiers.(1));
    ("tier_quarantine", float_of_int s.tiers.(2));
    ("tier_refused", float_of_int s.tiers.(3));
  ]

let () =
  (match Array.to_list Sys.argv with
  | _ :: "--child-serve" :: sock :: dir :: k :: _ ->
      child_serve sock dir (int_of_string k)
  | _ -> ());
  (* the parent writes to sockets whose far end dies on purpose *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let t0 = Unix.gettimeofday () in
  rm_rf scratch;
  let truncate, flip, dup, ckpt, prefixes, torn = offline_campaigns () in
  let kills = socket_kill_campaign () in
  let stats, acked, journaled, overload_uncontained, overload_restore =
    overload_drill ()
  in
  let clean_seconds, torn_seconds = recovery_timing () in
  rm_rf scratch;
  Out_channel.with_open_text "BENCH_torture.json" (fun oc ->
      let write = Rrs_obs.Run_summary.write oc in
      let campaign id s =
        write
          (Rrs_obs.Run_summary.make ~id ~kind:"bench"
             ~config:
               [
                 ("seed", string_of_int seed);
                 ("checkpoint_every", string_of_int config.checkpoint_every);
               ]
             ~analysis:(summary_analysis s) ())
      in
      campaign "journal-truncate" truncate;
      campaign "journal-flip" flip;
      campaign "journal-dup" dup;
      campaign "checkpoint-torture" ckpt;
      campaign "kill-prefix" prefixes;
      campaign "kill-prefix-torn" torn;
      campaign "socket-kill" kills;
      write
        (Rrs_obs.Run_summary.make ~id:"overload-drill" ~kind:"bench"
           ~config:
             [
               ("clients", "5");
               ("queue_limit", "4");
               ("shed_threshold", "6");
             ]
           ~analysis:
             [
               ("cases", 1.0);
               ("contained", if overload_restore.Torture.contained then 1.0 else 0.0);
               ("uncontained", float_of_int overload_uncontained);
               ("divergences", if journaled >= acked then 0.0 else 1.0);
               ("acked", float_of_int acked);
               ("journaled", float_of_int journaled);
               ("busy", float_of_int stats.Transport.busy);
               ("shed", float_of_int stats.Transport.shed);
               ("slow_drops", float_of_int stats.Transport.slow_drops);
               ( "shed_rate",
                 if stats.Transport.commands = 0 then 0.0
                 else
                   float_of_int stats.Transport.shed
                   /. float_of_int stats.Transport.commands );
             ]
           ());
      write
        (Rrs_obs.Run_summary.make ~id:"torture-recovery" ~kind:"bench"
           ~config:[ ("ops", "2000") ]
           ~analysis:
             [
               ("restore_seconds", clean_seconds);
               ("restore_torn_seconds", torn_seconds);
             ]
           ~timings:
             [
               {
                 Rrs_obs.Run_summary.phase = "restore";
                 seconds = clean_seconds;
                 count = 3;
               };
             ]
           ()));
  (match Rrs_obs.Run_summary.load "BENCH_torture.json" with
  | Ok summaries when List.length summaries = 9 -> ()
  | Ok summaries ->
      fail "BENCH_torture.json holds %d summaries, expected 9"
        (List.length summaries)
  | Error msg -> fail "BENCH_torture.json unreadable: %s" msg);
  Printf.printf "torture campaign finished in %.1f s\n"
    (Unix.gettimeofday () -. t0);
  print_endline "run summaries written to BENCH_torture.json";
  match List.rev !failures with
  | [] -> print_endline "torture bench: all acceptance checks passed"
  | msgs ->
      List.iter (fun m -> Printf.eprintf "FAIL: %s\n" m) msgs;
      exit 1
