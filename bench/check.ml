(* The perf-regression gate: compare freshly measured bench artifacts
   against the committed baselines under bench/baselines/ and exit
   nonzero if any gated metric regressed beyond its noise tolerance.

     check.exe --pair bench/baselines/BENCH_core.json:BENCH_core.json \
               --pair bench/baselines/BENCH_robust.json:BENCH_robust.json \
               --report benchdiff.txt

   The comparison semantics live in Rrs_obs.Benchdiff (also exposed as
   `rrs benchdiff BASELINE CURRENT`): deterministic metrics compare
   exactly, machine-relative ratios tightly, absolute rates loosely,
   wall clock never.  See doc/PERFORMANCE.md, "The regression gate". *)

let pairs = ref []
let report = ref None

let parse_pair s =
  match String.index_opt s ':' with
  | Some i when i > 0 && i < String.length s - 1 ->
      pairs :=
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
        :: !pairs
  | _ -> raise (Arg.Bad (Printf.sprintf "bad --pair %S (want BASELINE:CURRENT)" s))

let spec =
  [
    ("--pair", Arg.String parse_pair, "BASELINE:CURRENT artifact pair to gate");
    ( "--report",
      Arg.String (fun f -> report := Some f),
      "FILE also write the rendered delta report here" );
  ]

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "check.exe: gate fresh bench artifacts against committed baselines";
  if !pairs = [] then begin
    prerr_endline "check.exe: no --pair given";
    exit 2
  end;
  let buf = Buffer.create 4096 in
  let failed = ref false in
  List.iter
    (fun (baseline, current) ->
      Buffer.add_string buf
        (Printf.sprintf "=== %s vs %s ===\n" baseline current);
      match Rrs_obs.Benchdiff.compare_files ~baseline ~current () with
      | Error msg ->
          failed := true;
          Buffer.add_string buf (Printf.sprintf "ERROR: %s\n" msg)
      | Ok r ->
          if not (Rrs_obs.Benchdiff.ok r) then failed := true;
          Buffer.add_string buf (Rrs_obs.Benchdiff.render r))
    (List.rev !pairs);
  let text = Buffer.contents buf in
  print_string text;
  Option.iter
    (fun path ->
      Out_channel.with_open_text path (fun oc -> output_string oc text))
    !report;
  if !failed then begin
    print_endline "check: REGRESSION (see report above)";
    exit 1
  end;
  print_endline "check: all artifacts within tolerance"
