(* The robustness campaign.

   Part 1 drives a fault-injection campaign through the supervised
   experiment sweep: one deterministic plan per seed, together covering
   every in-sweep probe point (pool.worker, harness.run_policy,
   engine.run, engine.round), each run at --jobs 4.  The contract under
   test: every injection is contained (the sweep never raises), no
   sibling loses its result, and a failed experiment is reported as a
   typed failure.

   Part 2 runs the same plan idea against a JSONL-traced engine run to
   exercise the sink.jsonl probe, and checks the committed artifact
   prefix stays parseable after the injected crash.

   Part 3 measures what the machinery costs when it is idle: probe
   points without a plan, probe points under an empty plan, and a
   Record-mode watchdog consuming a full event stream.

   Everything lands in BENCH_robust.json as run_summary lines; the
   campaign records carry an "uncontained" count that CI greps for 0.
   Exit status is nonzero if any acceptance check fails. *)

open Rrs_core
module Families = Rrs_workload.Families
module Registry = Rrs_experiments.Registry
module Fault = Rrs_robust.Fault
module Supervisor = Rrs_robust.Supervisor
module Watchdog = Rrs_robust.Watchdog
module Sink = Rrs_obs.Sink

let failures : string list ref = ref []
let fail fmt = Printf.ksprintf (fun msg -> failures := msg :: !failures) fmt

let experiment_ids = [ "EXP-1"; "EXP-4"; "EXP-5"; "EXP-13" ]
let campaign_jobs = 4

(* no real sleeping anywhere in the campaign: delays are counted, and
   the supervisor's backoff clock is a no-op *)
let sleeps = Atomic.make 0

let supervise_policy =
  {
    Supervisor.default with
    timeout = Some 120.0;
    retries = 1;
    backoff = 0.0;
    jitter = 0.0;
    clock =
      { Supervisor.now = Unix.gettimeofday; sleep = (fun _ -> ignore ()) };
  }

(* One plan per seed; across the five seeds every in-sweep probe point
   carries at least one Fail rule.  Seed 2's engine.run injection is
   transient, so it also exercises the retry path — note that with a
   timeout set each attempt runs in a fresh domain whose per-domain Nth
   counter restarts, so the injection recurs on the retry and the
   failure is reported after the budget exhausts (still contained).

   Seed 1 uses [Every 1], not [Nth 1]: the pool's work-stealing loop
   makes "how many worker domains pull at least one task" a race, so a
   per-domain Nth trigger would fail a run-dependent number of
   experiments (3 or 4 of 4) and flap the Exact-gated contained count.
   [Every 1] fires on every task's worker probe — all 4 experiments
   fail, deterministically, all outside the supervised thunk (the
   probe precedes it), so this seed pins the sweep's escape-containment
   path and its crash-dump hook. *)
let campaign_rules seed =
  match seed with
  | 1 -> [ Fault.fail_on "pool.worker" (Fault.Every 1) ]
  | 2 -> [ Fault.fail_on ~transient:true "engine.run" (Fault.Nth 2) ]
  | 3 -> [ Fault.fail_on "harness.run_policy" (Fault.Nth 5) ]
  | 4 ->
      [
        Fault.fail_on "engine.round" (Fault.Nth 200);
        Fault.delay_on "engine.round" (Fault.Every 1000) ~seconds:0.001;
      ]
  | _ ->
      [
        Fault.delay_on "engine.round" (Fault.Every 50) ~seconds:0.0005;
        Fault.fail_on ~transient:true "harness.run_policy" (Fault.Prob 0.02);
      ]

let seeds = [ 1; 2; 3; 4; 5 ]

let fired = Hashtbl.create 8

let record_fired plan =
  List.iter
    (fun (point, count) ->
      let existing = Option.value ~default:0 (Hashtbl.find_opt fired point) in
      Hashtbl.replace fired point (existing + count))
    (Fault.injected plan)

let dump_root = "robust_crash_dumps"

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

(* The flight-recorder contract under fault fire: every final failure
   of the sweep must leave a crash-<id>.jsonl black-box whose first
   line is a flight_recorder header. *)
let check_crash_dumps ~seed ~dir failed =
  let dumps = ref 0 in
  List.iter
    (fun (id, (f : Supervisor.failure)) ->
      if f.phase <> "skipped" then begin
        let path = Rrs_obs.Flight_recorder.crash_dump_path ~dir ~name:id in
        if not (Sys.file_exists path) then
          fail "seed %d: no crash dump for failed %s" seed id
        else begin
          incr dumps;
          match In_channel.with_open_text path In_channel.input_lines with
          | [] | (exception Sys_error _) ->
              fail "seed %d: crash dump for %s is empty" seed id
          | header :: _ -> (
              match Rrs_obs.Json.parse header with
              | Ok j
                when Rrs_obs.Json.member "type" j
                     = Some (Rrs_obs.Json.String "flight_recorder") ->
                  ()
              | _ -> fail "seed %d: crash dump for %s: bad header" seed id)
        end
      end)
    failed;
  !dumps

let experiment_campaign () =
  print_endline
    "================================================================";
  print_endline " Fault-injection campaign (supervised experiment sweep)";
  print_endline
    "================================================================";
  let uncontained = ref 0 in
  let contained = ref 0 in
  let crash_dumps = ref 0 in
  rm_rf dump_root;
  Unix.mkdir dump_root 0o755;
  let recorder = Rrs_obs.Flight_recorder.create () in
  List.iter
    (fun seed ->
      let plan =
        Fault.plan ~seed
          ~sleep:(fun _ -> ignore (Atomic.fetch_and_add sleeps 1))
          (campaign_rules seed)
      in
      let dump_dir = Filename.concat dump_root (Printf.sprintf "seed-%d" seed) in
      let results =
        try
          Fault.with_plan plan (fun () ->
              Rrs_obs.Flight_recorder.with_recorder ~dump_dir recorder
                (fun () ->
                  Registry.run_many ~jobs:campaign_jobs
                    ~policy:supervise_policy ~keep_going:true experiment_ids))
        with e ->
          incr uncontained;
          fail "seed %d: injection escaped the sweep: %s" seed
            (Printexc.to_string e);
          []
      in
      record_fired plan;
      let failed = Registry.failures results in
      contained := !contained + List.length failed;
      crash_dumps := !crash_dumps + check_crash_dumps ~seed ~dir:dump_dir failed;
      if results <> [] && List.length results <> List.length experiment_ids
      then
        fail "seed %d: sweep returned %d of %d results" seed
          (List.length results) (List.length experiment_ids);
      List.iteri
        (fun i (id, _) ->
          if id <> List.nth experiment_ids i then
            fail "seed %d: result order broken at %d (%s)" seed i id)
        results;
      Printf.printf "seed %d: %d/%d experiments failed (all contained)\n" seed
        (List.length failed) (List.length experiment_ids))
    seeds;
  (* every in-sweep probe point must have fired somewhere in the campaign *)
  List.iter
    (fun point ->
      if point <> "sink.jsonl" then
        let count = Option.value ~default:0 (Hashtbl.find_opt fired point) in
        if count = 0 then fail "probe point %s never fired" point)
    Fault.standard_points;
  (* clean control sweep: no plan installed — with the same recorder
     armed, the supervisor must take no crash dump, and a heartbeat
     observed ambiently by every engine documents the run (the CI
     smoke uploads its stream + status files) *)
  let clean_dir = Filename.concat dump_root "clean" in
  let hb =
    Rrs_obs.Heartbeat.create ~every_rounds:256 ~path:"robust_heartbeat.jsonl"
      ~status_path:"robust_heartbeat.status" ()
  in
  let clean_results =
    Rrs_obs.Flight_recorder.with_recorder ~dump_dir:clean_dir recorder
      (fun () ->
        Rrs_obs.Heartbeat.with_heartbeat hb (fun () ->
            Registry.run_many ~jobs:campaign_jobs ~policy:supervise_policy
              ~keep_going:true experiment_ids))
  in
  Rrs_obs.Heartbeat.finish hb;
  if Registry.failures clean_results <> [] then
    fail "clean sweep reported failures";
  if Sys.file_exists clean_dir then
    fail "clean sweep produced crash dumps";
  if Rrs_obs.Heartbeat.rounds_observed hb = 0 then
    fail "clean sweep heartbeat observed no rounds";
  Printf.printf
    "clean sweep: 0 failures, 0 crash dumps, heartbeat %d beats over %d \
     rounds\n"
    (Rrs_obs.Heartbeat.beats hb)
    (Rrs_obs.Heartbeat.rounds_observed hb);
  (!contained, !uncontained, !crash_dumps, Rrs_obs.Heartbeat.rounds_observed hb)

let sink_campaign () =
  print_endline
    "================================================================";
  print_endline " Crash-safe artifacts (sink.jsonl injections, torn traces)";
  print_endline
    "================================================================";
  let router = (Option.get (Families.find "router")).build ~seed:1 in
  let uncontained = ref 0 in
  let contained = ref 0 in
  let parseable = ref 0 in
  let path = "robust_sink_campaign.jsonl" in
  List.iter
    (fun seed ->
      let plan =
        Fault.plan ~seed [ Fault.fail_on "sink.jsonl" (Fault.Nth (25 * seed)) ]
      in
      (match
         Fault.with_plan plan (fun () ->
             Sink.with_jsonl path (fun sink ->
                 let ({ policy; _ } : Lru_edf.instrumented) =
                   Lru_edf.make ~sink router ~n:8
                 in
                 ignore
                   (Engine.run_policy (Engine.config ~n:8 ~sink ()) router
                      policy)))
       with
      | () -> fail "seed %d: sink.jsonl injection never fired" seed
      | exception Rrs_fault.Injected _ -> incr contained
      | exception e ->
          incr uncontained;
          fail "seed %d: sink injection escaped as %s" seed
            (Printexc.to_string e));
      record_fired plan;
      (* the crash was contained by with_jsonl's commit-on-raise: the
         renamed artifact must hold the complete prefix of event lines *)
      match In_channel.with_open_text path In_channel.input_lines with
      | exception Sys_error msg -> fail "seed %d: no artifact: %s" seed msg
      | lines ->
          if lines = [] then fail "seed %d: artifact is empty" seed;
          if
            List.for_all
              (fun line -> Result.is_ok (Rrs_obs.Event.of_line line))
              lines
          then incr parseable
          else fail "seed %d: artifact has an unparseable line" seed)
    seeds;
  (try Sys.remove path with Sys_error _ -> ());
  (!contained, !uncontained, !parseable)

(* ------------------------------------------------------------------ *)
(* overhead                                                            *)
(* ------------------------------------------------------------------ *)

let best_of repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let overhead () =
  print_endline
    "================================================================";
  print_endline " Probe and watchdog overhead (dlru-edf/router, n=8)";
  print_endline
    "================================================================";
  let router = (Option.get (Families.find "router")).build ~seed:1 in
  let repeats = 10 in
  let run sink =
    let ({ policy; _ } : Lru_edf.instrumented) =
      if Sink.enabled sink then Lru_edf.make ~sink router ~n:8
      else Lru_edf.make router ~n:8
    in
    ignore (Engine.run_policy (Engine.config ~n:8 ~sink ()) router policy)
  in
  let no_plan = best_of repeats (fun () -> run Sink.null) in
  let empty_plan =
    best_of repeats (fun () ->
        Fault.with_plan (Fault.plan []) (fun () -> run Sink.null))
  in
  let wd_events = ref 0 in
  let watchdog =
    best_of repeats (fun () ->
        let wd = Watchdog.create ~policy:Watchdog.Record ~delta:router.delta () in
        run (Watchdog.attach wd Sink.null);
        Watchdog.finish wd;
        wd_events := Watchdog.events_seen wd;
        if not (Watchdog.ok wd) then
          List.iter
            (fun v ->
              fail "watchdog: %s" (Format.asprintf "%a" Watchdog.pp_violation v))
            (Watchdog.violations wd))
  in
  Printf.printf "no plan:     %.3f ms/run\n" (no_plan *. 1e3);
  Printf.printf "empty plan:  %.3f ms/run (%+.1f%%)\n" (empty_plan *. 1e3)
    ((empty_plan -. no_plan) /. no_plan *. 100.);
  Printf.printf "watchdog:    %.3f ms/run (%d events checked)\n"
    (watchdog *. 1e3) !wd_events;
  (no_plan, empty_plan, watchdog, !wd_events)

(* ------------------------------------------------------------------ *)

let () =
  let t0 = Unix.gettimeofday () in
  let exp_contained, exp_uncontained, crash_dumps, heartbeat_rounds =
    experiment_campaign ()
  in
  let sink_contained, sink_uncontained, sink_parseable = sink_campaign () in
  let no_plan, empty_plan, watchdog_seconds, wd_events = overhead () in
  let fired_analysis =
    List.map
      (fun point ->
        ( "fired_" ^ String.map (fun c -> if c = '.' then '_' else c) point,
          float_of_int (Option.value ~default:0 (Hashtbl.find_opt fired point))
        ))
      Fault.standard_points
  in
  Out_channel.with_open_text "BENCH_robust.json" (fun oc ->
      let write = Rrs_obs.Run_summary.write oc in
      write
        (Rrs_obs.Run_summary.make ~id:"fault-campaign" ~kind:"bench"
           ~config:
             [
               ("experiments", String.concat "," experiment_ids);
               ("jobs", string_of_int campaign_jobs);
               ("seeds", string_of_int (List.length seeds));
             ]
           ~analysis:
             ([
                ("contained", float_of_int exp_contained);
                ("uncontained", float_of_int exp_uncontained);
                ("crash_dumps", float_of_int crash_dumps);
                ("heartbeat_rounds", float_of_int heartbeat_rounds);
                ("delays_served", float_of_int (Atomic.get sleeps));
              ]
             @ fired_analysis)
           ());
      write
        (Rrs_obs.Run_summary.make ~id:"sink-campaign" ~kind:"bench"
           ~config:[ ("seeds", string_of_int (List.length seeds)) ]
           ~analysis:
             [
               ("contained", float_of_int sink_contained);
               ("uncontained", float_of_int sink_uncontained);
               ("artifacts_parseable", float_of_int sink_parseable);
             ]
           ());
      write
        (Rrs_obs.Run_summary.make ~id:"robust-overhead" ~kind:"bench"
           ~config:[ ("family", "router"); ("policy", "dlru-edf"); ("n", "8") ]
           ~analysis:
             [
               ("no_plan_seconds", no_plan);
               ("empty_plan_seconds", empty_plan);
               ("watchdog_seconds", watchdog_seconds);
               ("watchdog_events", float_of_int wd_events);
             ]
           ~timings:
             [
               {
                 Rrs_obs.Run_summary.phase = "no_plan";
                 seconds = no_plan;
                 count = 10;
               };
               {
                 Rrs_obs.Run_summary.phase = "watchdog";
                 seconds = watchdog_seconds;
                 count = 10;
               };
             ]
           ()));
  (match Rrs_obs.Run_summary.load "BENCH_robust.json" with
  | Ok summaries when List.length summaries = 3 -> ()
  | Ok summaries ->
      fail "BENCH_robust.json holds %d summaries, expected 3"
        (List.length summaries)
  | Error msg -> fail "BENCH_robust.json unreadable: %s" msg);
  Printf.printf "campaign finished in %.1f s\n" (Unix.gettimeofday () -. t0);
  print_endline "run summaries written to BENCH_robust.json";
  match List.rev !failures with
  | [] -> print_endline "robust bench: all acceptance checks passed"
  | msgs ->
      List.iter (fun m -> Printf.eprintf "FAIL: %s\n" m) msgs;
      exit 1
