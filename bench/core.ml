(* The incremental-ranking core bench: the asymptotic evidence behind the
   delta-driven hot path (doc/PERFORMANCE.md).

   Part 1 — scaling: rounds/sec of ΔLRU-EDF, Incremental vs Rebuild, as
   the color universe grows.  The workload keeps the per-round change
   count constant (a fixed number of active colors per batch window, all
   delay bounds equal to the window length) so the Rebuild mode's O(C)
   per-round scan is the only thing that grows with C.

   Part 2 — differential: every ranking policy in both modes on every
   workload family plus the Appendix A/B adversarial constructions; any
   field of Engine.result differing (including final_cache and the full
   recorded schedule) counts as a divergence.

   Writes one run_summary JSONL line per scaling size plus one for the
   differential section to BENCH_core.json; exits nonzero on any
   divergence so CI can gate on it. *)

open Rrs_core
module Families = Rrs_workload.Families
module Adv = Rrs_workload.Adversarial
module Rng = Rrs_prng.Rng

let sizes = ref [ 256; 512; 1024; 2048; 4096; 65536 ]
let windows = ref 24
let active = ref 8
let delta = ref 4
let n = ref 8
let repeats = ref 3
let diff_seeds = ref 2
let rebuild_cap = ref 4096
let out = ref "BENCH_core.json"

let parse_sizes s =
  sizes :=
    List.map
      (fun part ->
        match int_of_string_opt (String.trim part) with
        | Some v when v >= 1 -> v
        | _ -> raise (Arg.Bad (Printf.sprintf "bad size %S" part)))
      (String.split_on_char ',' s)

let spec =
  [
    ("--sizes", Arg.String parse_sizes, "CSV color-universe sizes to sweep");
    ("--windows", Arg.Set_int windows, "INT batch windows per instance");
    ("--active", Arg.Set_int active, "INT active colors per window");
    ("--delta", Arg.Set_int delta, "INT reconfiguration cost");
    ("--n", Arg.Set_int n, "INT online resources (multiple of 4)");
    ("--repeats", Arg.Set_int repeats, "INT best-of timing repetitions");
    ("--diff-seeds", Arg.Set_int diff_seeds, "INT seeds per family (part 2)");
    ( "--rebuild-cap",
      Arg.Set_int rebuild_cap,
      "INT largest size that still times the O(C)-per-round Rebuild arm \
       (above it rows are incremental-only)" );
    ("--out", Arg.Set_string out, "FILE JSONL artifact path");
  ]

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "core.exe: incremental-ranking scaling and differential bench"

(* ------------------------------------------------------------------ *)
(* Part 1: scaling                                                     *)
(* ------------------------------------------------------------------ *)

let ceil_pow2 x =
  let rec go p = if p >= x then p else go (2 * p) in
  go 1

(* All delay bounds equal the (power-of-two) window length W >= C, and
   each window hands [active] random colors a batch of [delta] jobs.
   Change events per round are therefore O(active) on average no matter
   how large C gets, while any per-round full scan pays O(C). *)
let scaling_instance ~num_colors ~seed =
  let w = ceil_pow2 num_colors in
  let rng = Rng.create ~seed in
  let batch = min w !delta in
  let arrivals = ref [] in
  for window = 0 to !windows - 1 do
    let chosen = Hashtbl.create (2 * !active) in
    while Hashtbl.length chosen < min !active num_colors do
      Hashtbl.replace chosen (Rng.int rng num_colors) ()
    done;
    Hashtbl.iter
      (fun color () ->
        arrivals :=
          { Types.round = window * w; color; count = batch } :: !arrivals)
      chosen
  done;
  Instance.create
    ~name:(Printf.sprintf "scaling-c%d" num_colors)
    ~delta:!delta
    ~delay:(Array.make num_colors w)
    ~arrivals:!arrivals ()

let best_of f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to max 1 !repeats do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    result := Some r;
    if dt < !best then best := dt
  done;
  (Option.get !result, !best)

let run_scaling oc =
  print_endline
    "================================================================";
  Printf.printf
    " Scaling: dlru-edf rounds/sec vs colors (windows=%d, active=%d)\n"
    !windows !active;
  print_endline
    "================================================================";
  Printf.printf "%8s %10s %14s %14s %9s %12s\n" "colors" "rounds"
    "incr rnd/s" "rebuild rnd/s" "speedup" "rank_updates";
  let all_identical = ref true in
  List.iter
    (fun size ->
      let instance = scaling_instance ~num_colors:size ~seed:1 in
      let run ?registry mode () =
        Engine.run_policy
          (Engine.config ~n:!n ())
          instance
          (Lru_edf.make ?registry ~mode instance ~n:!n).policy
      in
      let registry = Rrs_obs.Metrics.create () in
      let incr_result, incr_seconds =
        best_of (run ~registry Ranking.Incremental)
      in
      let updates =
        Rrs_obs.Metrics.value (Rrs_obs.Metrics.counter registry "ranking_update")
        / max 1 !repeats
      in
      (* the Rebuild arm's per-round scan is Θ(C): above the cap a timing
         run would dominate the whole bench for no extra signal, so large
         sizes are incremental-only rows (the differential section still
         exercises both arms on every instance it runs) *)
      let rebuild =
        if size <= !rebuild_cap then Some (best_of (run Ranking.Rebuild))
        else None
      in
      (* one extra instrumented run: the engine's own registry measures
         per-round latency and allocations (doc/PERFORMANCE.md); kept
         out of the [best_of] runs so rounds/sec stays unperturbed *)
      let engine_reg = Rrs_obs.Metrics.create () in
      ignore
        (Engine.run_policy
           (Engine.config ~n:!n ~registry:engine_reg ())
           instance
           (Lru_edf.make ~mode:Ranking.Incremental instance ~n:!n).policy);
      let latency =
        Rrs_obs.Metrics.histogram_stats
          (Rrs_obs.Metrics.histogram engine_reg "engine_round_latency_us"
             ~max_value:Engine.round_latency_max_us)
      in
      let q p = float_of_int (Rrs_stats.Histogram.quantile latency p) /. 1e6 in
      let gauge name =
        Rrs_obs.Metrics.gauge_value (Rrs_obs.Metrics.gauge engine_reg name)
      in
      let identical =
        match rebuild with
        | Some (rebuild_result, _) -> incr_result = rebuild_result
        | None -> true
      in
      if not identical then all_identical := false;
      let rounds = incr_result.rounds_simulated in
      let per_sec seconds = float_of_int rounds /. seconds in
      (match rebuild with
      | Some (_, rebuild_seconds) ->
          Printf.printf "%8d %10d %14.0f %14.0f %8.2fx %12d%s\n" size rounds
            (per_sec incr_seconds) (per_sec rebuild_seconds)
            (rebuild_seconds /. incr_seconds)
            updates
            (if identical then "" else "  DIVERGED")
      | None ->
          Printf.printf "%8d %10d %14.0f %14s %9s %12d\n" size rounds
            (per_sec incr_seconds) "-" "-" updates);
      Rrs_obs.Run_summary.write oc
        (Rrs_obs.Run_summary.make
           ~id:(Printf.sprintf "core-scaling-c%d" size)
           ~kind:"bench" ~seed:1
           ~config:
             [
               ("family", "scaling");
               ("policy", "dlru-edf");
               ("n", string_of_int !n);
               ("colors", string_of_int size);
               ("windows", string_of_int !windows);
               ("active", string_of_int !active);
             ]
           ~reconfig_cost:incr_result.cost.reconfig
           ~drop_cost:incr_result.cost.drop
           ~analysis:
             ([
                ("rounds", float_of_int rounds);
                ("incremental_seconds", incr_seconds);
                ("incremental_rounds_per_sec", per_sec incr_seconds);
                ("ranking_updates", float_of_int updates);
                ("round_latency_p50_seconds", q 0.5);
                ("round_latency_p95_seconds", q 0.95);
                ("round_latency_p99_seconds", q 0.99);
                ( "alloc_minor_words_per_round",
                  gauge "alloc_minor_words_per_round" );
                ( "alloc_promoted_words_per_round",
                  gauge "alloc_promoted_words_per_round" );
                ( "alloc_major_words_per_round",
                  gauge "alloc_major_words_per_round" );
              ]
             @
             match rebuild with
             | Some (_, rebuild_seconds) ->
                 [
                   ("rebuild_seconds", rebuild_seconds);
                   ("rebuild_rounds_per_sec", per_sec rebuild_seconds);
                   ("speedup", rebuild_seconds /. incr_seconds);
                   ("identical", if identical then 1.0 else 0.0);
                 ]
             | None -> [])
           ~timings:
             ({
                Rrs_obs.Run_summary.phase = "incremental";
                seconds = incr_seconds;
                count = max 1 !repeats;
              }
             ::
             (match rebuild with
             | Some (_, rebuild_seconds) ->
                 [
                   {
                     Rrs_obs.Run_summary.phase = "rebuild";
                     seconds = rebuild_seconds;
                     count = max 1 !repeats;
                   };
                 ]
             | None -> []))
           ()))
    !sizes;
  !all_identical

(* ------------------------------------------------------------------ *)
(* Part 2: differential                                                *)
(* ------------------------------------------------------------------ *)

let ranking_policies :
    (string * (Ranking.mode -> Instance.t -> n:int -> Policy.t)) list =
  [
    ("dlru", fun mode instance ~n -> (Delta_lru.make ~mode instance ~n).policy);
    ("edf", fun mode instance ~n -> (Edf_policy.make ~mode instance ~n).policy);
    ( "seq-edf",
      fun mode instance ~n -> (Edf_policy.make_seq ~mode instance ~n).policy );
    ("dlru-edf", fun mode instance ~n -> (Lru_edf.make ~mode instance ~n).policy);
  ]

let diff_instances () =
  let from_families =
    List.concat_map
      (fun (f : Families.family) ->
        List.init !diff_seeds (fun i ->
            (Printf.sprintf "%s-s%d" f.id (i + 1), f.build ~seed:(i + 1))))
      Families.all
  in
  let adversarial =
    [
      ("appendix-a", Adv.dlru_instance { n = 8; delta = 2; j = 5; k = 7 });
      ("appendix-b", Adv.edf_instance { n = 2; delta = 3; j = 2; k = 6 });
    ]
  in
  from_families @ adversarial

let run_differential oc =
  print_endline
    "================================================================";
  print_endline " Differential: Incremental vs Rebuild, full-result equality";
  print_endline
    "================================================================";
  let cases = ref 0 in
  let divergences = ref 0 in
  let instances = diff_instances () in
  (* the live-telemetry plane rides along on the Incremental arm only:
     its engine events stream into a flight recorder and a heartbeat
     observes every round, while the Rebuild arm stays bare.  The
     full-result equality below therefore proves ranking-mode identity
     AND that recorder + heartbeat perturb nothing (the ISSUE's
     non-perturbation acceptance bar, same standard as the Watchdog). *)
  let recorder = Rrs_obs.Flight_recorder.create ~capacity:256 () in
  let heartbeat = Rrs_obs.Heartbeat.create ~every_rounds:128 () in
  List.iter
    (fun (iname, instance) ->
      List.iter
        (fun (pname, make) ->
          incr cases;
          let run mode =
            let cfg =
              match mode with
              | Ranking.Incremental ->
                  Engine.config ~n:!n ~record_schedule:true
                    ~sink:(Rrs_obs.Flight_recorder.sink recorder)
                    ~heartbeat ()
              | Ranking.Rebuild ->
                  Engine.config ~n:!n ~record_schedule:true ()
            in
            Engine.run_policy cfg instance (make mode instance ~n:!n)
          in
          if run Ranking.Incremental <> run Ranking.Rebuild then begin
            incr divergences;
            Printf.printf "DIVERGED: %s on %s\n" pname iname
          end)
        ranking_policies;
      (* Par-EDF takes the same two paths below the engine *)
      incr cases;
      if
        Par_edf.run ~mode:Ranking.Incremental instance ~m:2
        <> Par_edf.run ~mode:Ranking.Rebuild instance ~m:2
      then begin
        incr divergences;
        Printf.printf "DIVERGED: par-edf on %s\n" iname
      end)
    instances;
  Printf.printf "%d cases (%d instances x %d policies): %d divergences\n"
    !cases (List.length instances)
    (List.length ranking_policies + 1)
    !divergences;
  Printf.printf
    "live telemetry attached to the incremental arm: %d events recorded, %d \
     heartbeats\n"
    (Rrs_obs.Flight_recorder.events_recorded recorder)
    (Rrs_obs.Heartbeat.beats heartbeat);
  Rrs_obs.Run_summary.write oc
    (Rrs_obs.Run_summary.make ~id:"core-differential" ~kind:"bench"
       ~config:
         [
           ("policies", "dlru,edf,seq-edf,dlru-edf,par-edf");
           ("instances", string_of_int (List.length instances));
           ("n", string_of_int !n);
           ("seeds_per_family", string_of_int !diff_seeds);
         ]
       ~analysis:
         [
           ("cases", float_of_int !cases);
           ("divergences", float_of_int !divergences);
           ( "recorder_events",
             float_of_int (Rrs_obs.Flight_recorder.events_recorded recorder)
           );
           ( "heartbeat_rounds",
             float_of_int (Rrs_obs.Heartbeat.rounds_observed heartbeat) );
         ]
       ());
  !divergences = 0

let () =
  let ok =
    Out_channel.with_open_text !out (fun oc ->
        let scaling_ok = run_scaling oc in
        let diff_ok = run_differential oc in
        scaling_ok && diff_ok)
  in
  Printf.printf "run summaries written to %s\n" !out;
  if not ok then begin
    print_endline "core bench: DIVERGENCE DETECTED";
    exit 1
  end;
  print_endline "core bench: done"
