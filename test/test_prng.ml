(* Tests for the from-scratch PRNG: determinism, ranges, and coarse
   distributional sanity (exact distribution tests are out of scope; we
   check means within generous tolerances on large samples). *)

module Rng = Rrs_prng.Rng

let test_determinism () =
  let a = Rng.create ~seed:42 in
  let b = Rng.create ~seed:42 in
  let sa = List.init 64 (fun _ -> Rng.bits64 a) in
  let sb = List.init 64 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "same seed, same stream" true (sa = sb);
  let c = Rng.create ~seed:43 in
  let sc = List.init 64 (fun _ -> Rng.bits64 c) in
  Alcotest.(check bool) "different seed, different stream" false (sa = sc)

let test_copy () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check bool) "copy continues identically" true
    (List.init 16 (fun _ -> Rng.bits64 a) = List.init 16 (fun _ -> Rng.bits64 b))

let test_split_independence () =
  let parent = Rng.create ~seed:1 in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  let s1 = List.init 32 (fun _ -> Rng.bits64 child1) in
  let s2 = List.init 32 (fun _ -> Rng.bits64 child2) in
  Alcotest.(check bool) "children differ" false (s1 = s2)

let test_int_bounds () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.fail "int out of bounds"
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int") (fun () ->
      ignore (Rng.int rng 0))

let test_int_in () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng (-3) 3 in
    if v < -3 || v > 3 then Alcotest.fail "int_in out of bounds"
  done;
  Alcotest.(check int) "degenerate range" 9 (Rng.int_in rng 9 9);
  Alcotest.check_raises "inverted" (Invalid_argument "Rng.int_in") (fun () ->
      ignore (Rng.int_in rng 2 1))

let test_int_uniformity () =
  (* chi-square-ish sanity: all 8 cells within 3x of each other *)
  let rng = Rng.create ~seed:11 in
  let cells = Array.make 8 0 in
  for _ = 1 to 80_000 do
    let v = Rng.int rng 8 in
    cells.(v) <- cells.(v) + 1
  done;
  let mn = Array.fold_left min max_int cells in
  let mx = Array.fold_left max 0 cells in
  Alcotest.(check bool)
    (Printf.sprintf "cells balanced (min=%d max=%d)" mn mx)
    true
    (float_of_int mx /. float_of_int mn < 1.2)

let test_float_range () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "float out of range"
  done

let test_bernoulli_mean () =
  let rng = Rng.create ~seed:13 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let mean = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "bernoulli mean %.3f ~ 0.3" mean)
    true
    (abs_float (mean -. 0.3) < 0.02);
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.0);
  Alcotest.(check bool) "p>=1 always" true (Rng.bernoulli rng 1.5)

let check_mean name ~expected ~tolerance samples =
  let mean =
    List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s mean %.3f ~ %.3f" name mean expected)
    true
    (abs_float (mean -. expected) < tolerance)

let test_exponential_mean () =
  let rng = Rng.create ~seed:17 in
  let samples = List.init 50_000 (fun _ -> Rng.exponential rng ~rate:2.0) in
  check_mean "exponential" ~expected:0.5 ~tolerance:0.02 samples;
  Alcotest.(check bool) "nonnegative" true (List.for_all (fun x -> x >= 0.0) samples)

let test_poisson_small_mean () =
  let rng = Rng.create ~seed:19 in
  let samples =
    List.init 50_000 (fun _ -> float_of_int (Rng.poisson rng ~mean:3.5))
  in
  check_mean "poisson(3.5)" ~expected:3.5 ~tolerance:0.1 samples

let test_poisson_large_mean () =
  let rng = Rng.create ~seed:23 in
  let samples =
    List.init 20_000 (fun _ -> float_of_int (Rng.poisson rng ~mean:200.0))
  in
  check_mean "poisson(200)" ~expected:200.0 ~tolerance:2.0 samples;
  Alcotest.(check int) "poisson(0)" 0 (Rng.poisson rng ~mean:0.0)

let test_geometric () =
  let rng = Rng.create ~seed:29 in
  let samples =
    List.init 50_000 (fun _ -> float_of_int (Rng.geometric rng ~p:0.25))
  in
  (* failures before success: mean (1-p)/p = 3 *)
  check_mean "geometric(0.25)" ~expected:3.0 ~tolerance:0.15 samples;
  Alcotest.(check int) "p=1" 0 (Rng.geometric rng ~p:1.0)

let test_pareto () =
  let rng = Rng.create ~seed:53 in
  let samples =
    List.init 50_000 (fun _ -> Rng.pareto rng ~shape:2.5 ~scale:1.0)
  in
  Alcotest.(check bool) "above scale" true
    (List.for_all (fun x -> x >= 1.0) samples);
  (* mean of Pareto(shape=2.5, scale=1) is shape/(shape-1) = 5/3 *)
  check_mean "pareto(2.5)" ~expected:(2.5 /. 1.5) ~tolerance:0.05 samples;
  (* heavy tail: for shape 1.2 some samples must be very large *)
  let rng = Rng.create ~seed:59 in
  let heavy = List.init 20_000 (fun _ -> Rng.pareto rng ~shape:1.2 ~scale:1.0) in
  Alcotest.(check bool) "heavy tail" true (List.exists (fun x -> x > 100.0) heavy);
  Alcotest.check_raises "bad shape" (Invalid_argument "Rng.pareto") (fun () ->
      ignore (Rng.pareto rng ~shape:0.0 ~scale:1.0))

let test_zipf () =
  let rng = Rng.create ~seed:31 in
  let n = 20 in
  let counts = Array.make n 0 in
  for _ = 1 to 100_000 do
    let r = Rng.zipf rng ~n ~s:1.2 in
    if r < 0 || r >= n then Alcotest.fail "zipf out of range";
    counts.(r) <- counts.(r) + 1
  done;
  (* mass must be decreasing-ish: rank 0 clearly dominates rank 4, etc. *)
  Alcotest.(check bool) "rank0 > rank4" true (counts.(0) > counts.(4));
  Alcotest.(check bool) "rank1 > rank10" true (counts.(1) > counts.(10));
  (* theoretical p(0) with s=1.2, n=20 is ~0.39; allow slack *)
  let p0 = float_of_int counts.(0) /. 100_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p0=%.3f in (0.3, 0.5)" p0)
    true
    (p0 > 0.3 && p0 < 0.5);
  Alcotest.(check int) "n=1 constant" 0 (Rng.zipf rng ~n:1 ~s:1.0)

let test_zipf_parallel_determinism () =
  (* Four domains hit a cold (n, s) cache entry at once: the
     double-checked insert in [zipf_cdf] must hand every racer the same
     published table, so identically-seeded generators stay in lockstep
     with a sequential draw. *)
  let n = 96 and s = 1.2 in
  let draw () =
    let rng = Rng.create ~seed:11 in
    List.init 512 (fun _ -> Rng.zipf rng ~n ~s)
  in
  (* parallel first: the cache entry for this (n, s) must be cold so the
     domains race to build it *)
  let streams = Rrs_parallel.Pool.map ~domains:4 (fun _ -> draw ()) [ 0; 1; 2; 3 ] in
  let expected = draw () in
  List.iter
    (Alcotest.(check (list int)) "same sequence under contention" expected)
    streams

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:37 in
  let a = Array.init 50 Fun.id in
  let orig = Array.copy a in
  Rng.shuffle rng a;
  Alcotest.(check bool) "same multiset" true
    (List.sort compare (Array.to_list a) = Array.to_list orig);
  Alcotest.(check bool) "actually permuted" false (a = orig)

let test_pick () =
  let rng = Rng.create ~seed:41 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    if not (Array.mem (Rng.pick rng a) a) then Alcotest.fail "pick not member"
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick") (fun () ->
      ignore (Rng.pick rng [||]))

let () =
  Alcotest.run "prng"
    [
      ( "stream",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "split" `Quick test_split_independence;
        ] );
      ( "uniform",
        [
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "float range" `Quick test_float_range;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "bernoulli" `Quick test_bernoulli_mean;
          Alcotest.test_case "exponential" `Quick test_exponential_mean;
          Alcotest.test_case "poisson small" `Quick test_poisson_small_mean;
          Alcotest.test_case "poisson large" `Quick test_poisson_large_mean;
          Alcotest.test_case "geometric" `Quick test_geometric;
          Alcotest.test_case "zipf" `Quick test_zipf;
          Alcotest.test_case "zipf parallel determinism" `Quick
            test_zipf_parallel_determinism;
          Alcotest.test_case "pareto" `Quick test_pareto;
        ] );
      ( "combinatorial",
        [
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
          Alcotest.test_case "pick" `Quick test_pick;
        ] );
    ]
