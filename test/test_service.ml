(* The service layer's contracts:

   - the protocol parser is total and round-trips its canonical form;
   - a streamed Session is decision-identical to the batch engine on
     every family and through both reductions (schedule and all);
   - Snapshot serialize -> deserialize is an identity on reachable
     states (QCheck over random command sequences);
   - a session killed at round k (journal left behind, no graceful
     shutdown) and restored by a fresh server produces the batch run's
     exact accounting — the load-bearing kill/restore differential;
   - an injected transient fault mid-session restarts under the
     supervisor from the journal and converges to the same state. *)

open Rrs_core
module Families = Rrs_workload.Families
module Stream = Rrs_workload.Arrival_stream
module Protocol = Rrs_service.Protocol
module Snapshot = Rrs_service.Snapshot
module Journal = Rrs_service.Journal
module Server = Rrs_service.Server
module Session = Engine.Session

(* ---- protocol ----------------------------------------------------- *)

let test_protocol_parse () =
  let ok line = function
    | Ok (Some cmd) -> cmd
    | Ok None -> Alcotest.failf "%S parsed to nothing" line
    | Error e -> Alcotest.failf "%S refused: %s" line e
  in
  let check_cmd line expected =
    Alcotest.(check bool) (Printf.sprintf "parse %S" line) true
      (ok line (Protocol.parse line) = expected)
  in
  check_cmd "submit 3 7" (Protocol.Submit { round = None; color = 3; count = 7 });
  check_cmd "submit 12 3 7"
    (Protocol.Submit { round = Some 12; color = 3; count = 7 });
  check_cmd "step" (Protocol.Step 1);
  check_cmd "step 40" (Protocol.Step 40);
  check_cmd "  state  " Protocol.State;
  check_cmd "checkpoint" Protocol.Checkpoint;
  check_cmd "quit" Protocol.Quit;
  check_cmd "reconfigure delta=5 n=12 delay=0:4,2:16"
    (Protocol.Reconfigure
       { delta = Some 5; n = Some 12; delay = [ (0, 4); (2, 16) ] });
  (* blanks and comments parse to nothing *)
  Alcotest.(check bool) "blank" true (Protocol.parse "   " = Ok None);
  Alcotest.(check bool) "comment" true (Protocol.parse "# hi" = Ok None);
  Alcotest.(check bool)
    "trailing comment" true
    (Protocol.parse "step 2 # two" = Ok (Some (Protocol.Step 2)));
  (* errors are typed strings, never raises *)
  List.iter
    (fun line ->
      match Protocol.parse line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" line)
    [
      "submit"; "submit x 3"; "step 0"; "step -1"; "frobnicate"; "state 1";
      "reconfigure"; "reconfigure speed=9"; "reconfigure delay=0";
    ]

let test_protocol_roundtrip () =
  List.iter
    (fun cmd ->
      match Protocol.parse (Protocol.command_to_string cmd) with
      | Ok (Some cmd') ->
          Alcotest.(check bool)
            (Protocol.command_to_string cmd)
            true (cmd = cmd')
      | _ ->
          Alcotest.failf "canonical form %S did not round-trip"
            (Protocol.command_to_string cmd))
    [
      Protocol.Submit { round = None; color = 1; count = 3 };
      Protocol.Submit { round = Some 9; color = 0; count = 1 };
      Protocol.Step 1;
      Protocol.Step 17;
      Protocol.State;
      Protocol.Reconfigure { delta = Some 2; n = None; delay = [ (1, 8) ] };
      Protocol.Checkpoint;
      Protocol.Quit;
      Protocol.Help;
    ]

(* ---- streamed session == batch engine ----------------------------- *)

let drive_stream ?(cfg_of = fun ~n -> Engine.config ~n ~record_schedule:true ())
    instance factory ~n =
  let cfg = cfg_of ~n in
  let session =
    Session.create cfg ~delta:instance.Instance.delta
      ~delay:instance.Instance.delay factory
  in
  let stream = Stream.of_instance instance in
  (* feed each round's batch just before stepping it: the live pattern *)
  for round = 0 to instance.Instance.horizon do
    Stream.feed_session stream session ~upto:round;
    Session.step session
  done;
  Session.finish ~expect_drained:true session

let batch ?(cfg_of = fun ~n -> Engine.config ~n ~record_schedule:true ())
    instance factory ~n =
  Engine.run (cfg_of ~n) instance factory

let check_stream_matches_batch label instance =
  let n = 8 in
  let streamed = drive_stream instance Lru_edf.policy ~n in
  let batched = batch instance Lru_edf.policy ~n in
  Alcotest.(check bool)
    (Printf.sprintf "%s streamed == batch" label)
    true (streamed = batched)

let test_stream_families () =
  List.iter
    (fun id ->
      let f = Option.get (Families.find id) in
      check_stream_matches_batch id (f.build ~seed:1))
    (Families.ids ())

(* Feeding everything up front (the whole future in the buckets) must
   make the same schedule as feeding just in time. *)
let test_stream_feed_order () =
  let f = Option.get (Families.find "bursty") in
  let instance = f.build ~seed:3 in
  let n = 8 in
  let eager =
    let cfg = Engine.config ~n ~record_schedule:true () in
    let session =
      Session.create cfg ~delta:instance.Instance.delta
        ~delay:instance.Instance.delay Lru_edf.policy
    in
    let stream = Stream.of_instance instance in
    Stream.feed_session stream session ~upto:instance.Instance.horizon;
    for _ = 0 to instance.Instance.horizon do
      Session.step session
    done;
    Session.finish ~expect_drained:true session
  in
  Alcotest.(check bool) "eager == batch" true
    (eager = batch instance Lru_edf.policy ~n)

(* Both reductions: the streamed engine must price a reduced instance
   exactly like the batch engine does, projection included. *)
let test_stream_reductions () =
  let n = 8 in
  (* Distribute: oversized batches -> subcolors + cost projection *)
  let oversized = (Option.get (Families.find "oversized")).build ~seed:1 in
  let mapping = Distribute.transform oversized in
  let cfg_of ~n =
    Engine.config ~n ~record_schedule:true
      ~cost_projection:(Distribute.project mapping) ()
  in
  Alcotest.(check bool) "distribute streamed == batch" true
    (drive_stream ~cfg_of mapping.Distribute.sub_instance Lru_edf.policy ~n
    = batch ~cfg_of mapping.Distribute.sub_instance Lru_edf.policy ~n);
  (* VarBatch: arbitrary arrivals -> batched (then batched -> engine) *)
  let unbatched = (Option.get (Families.find "unbatched")).build ~seed:1 in
  let vb = Var_batch.transform unbatched in
  check_stream_matches_batch "varbatch" vb;
  (* and the composition the pipeline actually runs *)
  let mapping2 = Distribute.transform vb in
  let cfg_of2 ~n =
    Engine.config ~n ~record_schedule:true
      ~cost_projection:(Distribute.project mapping2) ()
  in
  Alcotest.(check bool) "varbatch+distribute streamed == batch" true
    (drive_stream ~cfg_of:cfg_of2 mapping2.Distribute.sub_instance
       Lru_edf.policy ~n
    = batch ~cfg_of:cfg_of2 mapping2.Distribute.sub_instance Lru_edf.policy ~n)

(* ---- session guards ----------------------------------------------- *)

let fresh_session ?(n = 4) ?(delta = 2) ?(delay = [| 4; 4; 4 |]) () =
  Session.create (Engine.config ~n ()) ~delta ~delay Edf_policy.seq_policy

let test_feed_guards () =
  let s = fresh_session () in
  let expect name err = function
    | Error e when e = err -> ()
    | Error _ -> Alcotest.failf "%s: wrong error" name
    | Ok () -> Alcotest.failf "%s: accepted" name
  in
  expect "color range"
    (`Color_out_of_range (3, 3))
    (Session.feed s ~round:0 ~color:3 ~count:1);
  expect "count" (`Count_not_positive 0) (Session.feed s ~round:0 ~color:0 ~count:0);
  Alcotest.(check bool) "ok feed" true
    (Session.feed s ~round:2 ~color:0 ~count:1 = Ok ());
  Session.step s;
  Session.step s;
  expect "past round" (`Round_in_past (1, 2))
    (Session.feed s ~round:1 ~color:0 ~count:1);
  (* a preloaded session takes no feed *)
  let instance =
    Instance.create ~delta:2 ~delay:[| 4 |]
      ~arrivals:[ { Types.round = 0; color = 0; count = 2 } ]
      ()
  in
  let p =
    Session.of_instance (Engine.config ~n:2 ()) instance
      (Edf_policy.seq_policy instance ~n:2)
  in
  expect "preloaded" `Preloaded (Session.feed p ~round:0 ~color:0 ~count:1);
  (* and cannot re-derive a policy for reconfiguration *)
  (match Session.reconfigure p ~n:4 () with
  | Error `No_factory -> ()
  | _ -> Alcotest.fail "of_instance reconfigure should need a factory")

let test_reconfigure_guards () =
  let s = fresh_session () in
  let expect name err = function
    | Error e when e = err -> ()
    | Error _ -> Alcotest.failf "%s: wrong error" name
    | Ok () -> Alcotest.failf "%s: accepted" name
  in
  expect "bad delta" (`Bad_delta 0) (Session.reconfigure s ~delta:0 ());
  expect "bad n" (`Bad_n 0) (Session.reconfigure s ~n:0 ());
  expect "unknown color" (`Unknown_color 7)
    (Session.reconfigure s ~delay:[ (7, 4) ] ());
  expect "bad delay" (`Bad_delay (0, 0)) (Session.reconfigure s ~delay:[ (0, 0) ] ());
  (* shrinking a delay bound under pending jobs would reorder deadlines *)
  Alcotest.(check bool) "feed" true
    (Session.feed s ~round:0 ~color:1 ~count:2 = Ok ());
  Session.step s;
  expect "delay shrink" (`Delay_reduced_while_pending 1)
    (Session.reconfigure s ~delay:[ (1, 2) ] ());
  (* growing it is fine; shrinking an idle color is fine *)
  Alcotest.(check bool) "grow" true
    (Session.reconfigure s ~delay:[ (1, 9) ] () = Ok ());
  Alcotest.(check bool) "shrink idle" true
    (Session.reconfigure s ~delay:[ (0, 2) ] () = Ok ());
  (* capacity changes preserve the cache prefix without a charge *)
  let before = Session.reconfigurations s in
  Alcotest.(check bool) "grow n" true (Session.reconfigure s ~n:8 () = Ok ());
  Alcotest.(check int) "no charge" before (Session.reconfigurations s);
  Alcotest.(check int) "n grew" 8 (Session.n s);
  Session.step s;
  ignore (Session.finish s)

let test_scale_guard () =
  let uniform = Option.get (Families.find "uniform") in
  (match Families.scale_to uniform ~num_colors:64 ~seed:1 with
  | Ok i -> Alcotest.(check int) "scaled" 64 i.Instance.num_colors
  | Error _ -> Alcotest.fail "64 colors should scale");
  (match Families.scale_to uniform ~num_colors:(Packed.max_colors + 1) ~seed:1 with
  | Error (Families.Too_many_colors { requested; max }) ->
      Alcotest.(check int) "requested" (Packed.max_colors + 1) requested;
      Alcotest.(check int) "max" Packed.max_colors max
  | _ -> Alcotest.fail "over-sized universe must be refused");
  (match Families.scale_to uniform ~num_colors:0 ~seed:1 with
  | Error (Families.Not_positive 0) -> ()
  | _ -> Alcotest.fail "0 colors must be refused");
  let datacenter = Option.get (Families.find "datacenter") in
  match Families.scale_to datacenter ~num_colors:64 ~seed:1 with
  | Error (Families.Fixed_cast "datacenter") -> ()
  | _ -> Alcotest.fail "scenario families must refuse scaling"

(* ---- snapshot round-trip (QCheck) --------------------------------- *)

(* A reachable state: whatever a random command sequence leaves behind. *)
let session_ops_gen =
  let open QCheck.Gen in
  let* num_colors = int_range 1 5 in
  let* delta = int_range 1 4 in
  let* delays = array_size (return num_colors) (int_range 1 10) in
  let* ops =
    list_size (int_range 0 30)
      (frequency
         [
           ( 4,
             let* ahead = int_range 0 5 in
             let* color = int_range 0 (num_colors - 1) in
             let* count = int_range 1 6 in
             return (`Submit (ahead, color, count)) );
           (3, let* k = int_range 1 6 in
               return (`Step k));
           ( 1,
             let* d = int_range 1 4 in
             return (`Reconfig_delta d) );
           ( 1,
             let* color = int_range 0 (num_colors - 1) in
             let* bound = int_range 1 10 in
             return (`Reconfig_delay (color, bound)) );
         ])
  in
  return (num_colors, delta, delays, ops)

let apply_ops (num_colors, delta, delays, ops) =
  ignore num_colors;
  let session =
    Session.create (Engine.config ~n:4 ()) ~delta ~delay:delays
      Edf_policy.seq_policy
  in
  let applied = ref 0 in
  List.iter
    (fun op ->
      let outcome =
        match op with
        | `Submit (ahead, color, count) ->
            Result.is_ok
              (Session.feed session
                 ~round:(Session.round session + ahead)
                 ~color ~count)
        | `Step k ->
            for _ = 1 to k do
              Session.step session
            done;
            true
        | `Reconfig_delta d ->
            Result.is_ok (Session.reconfigure session ~delta:d ())
        | `Reconfig_delay (color, bound) ->
            Result.is_ok (Session.reconfigure session ~delay:[ (color, bound) ] ())
      in
      if outcome then incr applied)
    ops;
  Snapshot.of_session ~ops:!applied session

let prop_snapshot_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"snapshot serialize/deserialize is an identity on reachable states"
    (QCheck.make session_ops_gen)
    (fun setup ->
      let snapshot = apply_ops setup in
      match Snapshot.of_line (Snapshot.to_line snapshot) with
      | Ok snapshot' -> Snapshot.equal snapshot snapshot'
      | Error e -> QCheck.Test.fail_reportf "did not parse back: %s" e)

(* ---- kill at round k / restore ------------------------------------ *)

let temp_dir =
  let counter = ref 0 in
  fun name ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rrs_service_%s_%d_%d" name (Unix.getpid ()) !counter)
    in
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

(* Run Server.serve over string input, capturing output lines. *)
let run_server config script =
  let in_path = Filename.temp_file "serve_in" ".txt" in
  let out_path = Filename.temp_file "serve_out" ".txt" in
  Out_channel.with_open_text in_path (fun oc -> output_string oc script);
  let ic = In_channel.open_text in_path in
  let oc = Out_channel.open_text out_path in
  let code = Server.serve config ic oc in
  In_channel.close ic;
  Out_channel.close oc;
  let output = In_channel.with_open_text out_path In_channel.input_lines in
  Sys.remove in_path;
  Sys.remove out_path;
  (code, output)

let submit_ops instance =
  let stream = Stream.of_instance instance in
  let rec collect acc =
    match Stream.next stream with
    | None -> List.rev acc
    | Some (round, batch) ->
        collect
          (List.rev_append
             (List.map
                (fun (color, count) -> Journal.Submit { round; color; count })
                batch)
             acc)
  in
  collect []

(* Emulate a process killed at round [k]: write the journal a dying
   server leaves behind (header + ops, flushed per line, no checkpoint,
   no goodbye), then restore with a fresh server that finishes the
   stream, and compare its final accounting against the uninterrupted
   batch run. *)
let check_kill_restore label instance =
  let n = 8 in
  let horizon = instance.Instance.horizon in
  let k = max 1 ((horizon + 1) / 2) in
  let dir = temp_dir "kill" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let header =
    {
      Journal.version = Journal.header_version;
      policy = "dlru-edf";
      n;
      delta = instance.Instance.delta;
      delay = Array.copy instance.Instance.delay;
      mini_rounds = 1;
    }
  in
  let w = Journal.create (Filename.concat dir "journal.jsonl") header in
  List.iter (fun op -> Journal.append w op) (submit_ops instance);
  Journal.append w (Journal.Step k);
  Journal.close w;
  let config =
    {
      Server.default_config with
      policy = "dlru-edf";
      n;
      delta = instance.Instance.delta;
      delay = Array.copy instance.Instance.delay;
      checkpoint_dir = Some dir;
      checkpoint_every = 0;
    }
  in
  let script = Printf.sprintf "step %d\nquit\n" (horizon + 1 - k) in
  let code, output = run_server config script in
  Alcotest.(check int) (label ^ " restored exit") 0 code;
  (match output with
  | first :: _ ->
      if not (String.length first >= 11 && String.sub first 0 11 = "ok restored")
      then Alcotest.failf "%s: expected restore greeting, got %S" label first
  | [] -> Alcotest.failf "%s: no server output" label);
  let ckpt =
    In_channel.with_open_text
      (Filename.concat dir "checkpoint.json")
      In_channel.input_line
  in
  let snapshot =
    match Option.map Snapshot.of_line ckpt with
    | Some (Ok s) -> s
    | _ -> Alcotest.failf "%s: unreadable final checkpoint" label
  in
  let batch = Engine.run (Engine.config ~n ()) instance Lru_edf.policy in
  Alcotest.(check int) (label ^ " rounds") (horizon + 1) snapshot.Snapshot.round;
  Alcotest.(check int) (label ^ " executed") batch.Engine.executed
    snapshot.Snapshot.executed;
  Alcotest.(check int) (label ^ " dropped") batch.Engine.dropped
    snapshot.Snapshot.dropped;
  Alcotest.(check int)
    (label ^ " recolorings")
    batch.Engine.reconfigurations snapshot.Snapshot.reconfigurations;
  Alcotest.(check int)
    (label ^ " reconfig cost")
    batch.Engine.cost.Cost.reconfig snapshot.Snapshot.reconfig_cost;
  Alcotest.(check bool)
    (label ^ " cache")
    true
    (snapshot.Snapshot.cache = batch.Engine.final_cache);
  Alcotest.(check int) (label ^ " drained") 0 snapshot.Snapshot.pending_jobs

let test_kill_restore_families () =
  List.iter
    (fun id ->
      let f = Option.get (Families.find id) in
      check_kill_restore id (f.build ~seed:1))
    (Families.ids ())

(* ---- supervised crash-restart ------------------------------------- *)

(* The 6th command below is a [state] — no journal op, so losing it to
   the injected crash must not change the final accounting. *)
let test_fault_restart () =
  let dir = temp_dir "fault" in
  let dir2 = temp_dir "clean" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      rm_rf dir2)
  @@ fun () ->
  let script =
    String.concat "\n"
      [
        "submit 0 0 5";
        "submit 0 1 3";
        "step 4";
        "submit 1 6";
        "step 2";
        "state";
        "step 4";
        "quit";
        "";
      ]
  in
  let config dir =
    {
      Server.default_config with
      n = 4;
      delta = 2;
      delay = Array.make 4 6;
      checkpoint_dir = Some dir;
      checkpoint_every = 2;
      retries = 2;
    }
  in
  let plan =
    Rrs_fault.plan ~sleep:ignore
      [ Rrs_fault.fail_on ~transient:true "serve.command" (Rrs_fault.Nth 6) ]
  in
  let code, output =
    Rrs_fault.with_plan plan (fun () -> run_server (config dir) script)
  in
  Alcotest.(check int) "faulted exit" 0 code;
  Alcotest.(check bool) "supervisor restarted the session" true
    (List.exists
       (fun l ->
         String.length l >= 11 && String.sub l 0 11 = "ok restored")
       output);
  let clean_code, _ = run_server (config dir2) script in
  Alcotest.(check int) "clean exit" 0 clean_code;
  let load dir =
    match
      In_channel.with_open_text
        (Filename.concat dir "checkpoint.json")
        In_channel.input_line
    with
    | Some line -> (
        match Snapshot.of_line line with
        | Ok s -> s
        | Error e -> Alcotest.failf "checkpoint: %s" e)
    | None -> Alcotest.fail "no checkpoint"
  in
  Alcotest.(check bool) "faulted run converged to the clean state" true
    (Snapshot.equal (load dir) (load dir2))

(* ---- memory boundedness (no per-round retention) ------------------ *)

let test_bounded_state () =
  (* a long stream at steady load: live words after the run must not
     scale with the number of rounds — no schedule, no history *)
  let delay = Array.make 4 8 in
  let run rounds =
    let session =
      Session.create (Engine.config ~n:4 ()) ~delta:2 ~delay
        Edf_policy.seq_policy
    in
    for round = 0 to rounds - 1 do
      ignore (Session.feed session ~round ~color:(round mod 4) ~count:2);
      Session.step session
    done;
    ignore (Session.finish session);
    Gc.full_major ();
    (Gc.stat ()).Gc.live_words
  in
  let short = run 500 in
  let long = run 20_000 in
  (* identical steady state: allow slack for GC accounting noise, but
     40x the rounds must not show up as retained words *)
  Alcotest.(check bool)
    (Printf.sprintf "live words flat (%d vs %d)" short long)
    true
    (long - short < 10_000)

(* ---- protocol fuzz (QCheck) --------------------------------------- *)

module Torture = Rrs_service.Torture

(* the parser's totality contract: any byte string gets Ok/Error, never
   an exception, and anything it does accept re-parses from its
   canonical form to the same command *)
let parse_never_raises input =
  match Protocol.parse input with
  | Ok None | Error _ -> true
  | Ok (Some cmd) -> (
      let canonical = Protocol.command_to_string cmd in
      match Protocol.parse canonical with
      | Ok (Some cmd') -> cmd' = cmd
      | _ -> false)
  | exception e ->
      QCheck.Test.fail_reportf "parse raised %s on %S"
        (Printexc.to_string e) input

let prop_parse_arbitrary_bytes =
  let gen = QCheck.Gen.(string_size ~gen:char (0 -- 80)) in
  QCheck.Test.make ~count:2000 ~name:"parse is total on arbitrary bytes"
    (QCheck.make ~print:(Printf.sprintf "%S") gen)
    parse_never_raises

(* near misses: start from a valid command and damage it a little —
   the parser must degrade to a clean error or another valid parse,
   never an exception or a raise from int_of_string and friends *)
let valid_commands =
  [
    "submit 3 2 4";
    "submit 2 4";
    "step 7";
    "step 1";
    "state";
    "reconfigure delta=3 n=9 delay=0:4,1:6";
    "reconfigure delay=2:5";
    "checkpoint";
    "open side-1";
    "attach side-1";
    "sessions";
    "shutdown";
    "quit";
    "help";
  ]

let mutate_gen =
  let open QCheck.Gen in
  let* base = oneofl valid_commands in
  let* kind = int_bound 5 in
  let len = String.length base in
  let* i = int_bound (max 0 (len - 1)) in
  let* c = char in
  return
    (match kind with
    | 0 when len > 0 ->
        (* flip one byte *)
        String.mapi (fun j x -> if j = i then c else x) base
    | 1 ->
        (* insert one byte *)
        String.sub base 0 i ^ String.make 1 c
        ^ String.sub base i (len - i)
    | 2 when len > 0 ->
        (* delete one byte *)
        String.sub base 0 i ^ String.sub base (i + 1) (len - i - 1)
    | 3 ->
        (* duplicate the tail *)
        base ^ " " ^ String.sub base i (len - i)
    | 4 ->
        (* huge number where a field may be *)
        base ^ " 99999999999999999999999"
    | _ -> String.uppercase_ascii base)

let prop_parse_near_miss =
  QCheck.Test.make ~count:2000 ~name:"parse survives near-miss mutations"
    (QCheck.make ~print:(Printf.sprintf "%S") mutate_gen)
    parse_never_raises

(* ---- torn journal tail: exact byte offsets ------------------------ *)

let torture_config =
  {
    Server.default_config with
    n = 4;
    delta = 2;
    delay = Array.make 4 6;
    checkpoint_every = 6;
  }

let write_torn_journal dir =
  let path = Filename.concat dir "journal.jsonl" in
  let header =
    {
      Journal.version = Journal.header_version;
      policy = torture_config.Server.policy;
      n = torture_config.Server.n;
      delta = torture_config.Server.delta;
      delay = torture_config.Server.delay;
      mini_rounds = torture_config.Server.mini_rounds;
    }
  in
  let w = Journal.create path header in
  Journal.append w (Journal.Submit { round = 0; color = 1; count = 2 });
  Journal.append w (Journal.Step 1);
  Journal.close w;
  let intact = (Unix.stat path).Unix.st_size in
  let oc = Out_channel.open_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "{\"type\":\"serve_op\",\"op\":\"su";
  Out_channel.close oc;
  (path, intact)

let test_torn_tail_offset () =
  let dir = temp_dir "torn" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path, intact = write_torn_journal dir in
  (match Journal.load path with
  | Ok (_, ops, Some tear) ->
      Alcotest.(check int) "ops before the tear" 2 (List.length ops);
      Alcotest.(check int) "tear offset" intact tear.Journal.offset;
      let msg = Journal.describe_tear ~path tear in
      Alcotest.(check bool)
        (Printf.sprintf "describe_tear names offset %d: %s" intact msg)
        true
        (let needle = string_of_int intact in
         let n = String.length needle and m = String.length msg in
         let rec find i =
           i + n <= m && (String.sub msg i n = needle || find (i + 1))
         in
         find 0)
  | Ok (_, _, None) -> Alcotest.fail "tear not detected"
  | Error e ->
      Alcotest.failf "load failed: %s"
        (Journal.describe_load_error ~path e));
  (* the server restore drops the tear (tier 1), reports it, and
     truncates the file so the next append cannot glue onto it *)
  let h = Server.host { torture_config with checkpoint_dir = Some dir } in
  let s = Server.open_session h Server.default_session in
  Alcotest.(check int) "restored ops" 2 (Server.session_ops s);
  Alcotest.(check bool) "a recovery notice names the offset" true
    (List.exists
       (fun notice ->
         let needle = string_of_int intact in
         let n = String.length needle and m = String.length notice in
         let rec find i =
           i + n <= m && (String.sub notice i n = needle || find (i + 1))
         in
         find 0)
       (Server.session_notices s));
  Alcotest.(check int) "journal truncated to the tear offset" intact
    (Unix.stat path).Unix.st_size;
  Server.abandon_session h s

(* ---- tiered recovery ---------------------------------------------- *)

let torture_ops = Torture.ops_of_seed ~count:24 ~colors:4 5

let rec rm_rf_deep path =
  match Sys.is_directory path with
  | true ->
      Array.iter
        (fun e -> rm_rf_deep (Filename.concat path e))
        (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_fixture_dir name f =
  let dir = temp_dir name in
  Fun.protect ~finally:(fun () -> rm_rf_deep dir) @@ fun () ->
  Torture.build_fixture torture_config torture_ops dir;
  f dir

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let test_checkpoint_quarantine () =
  with_fixture_dir "ckptq" @@ fun dir ->
  let cpath = Filename.concat dir "checkpoint.json" in
  write_file cpath "this is not a snapshot\n";
  let v = Torture.restore_case ~case:"ckpt-garbage" torture_config dir in
  Alcotest.(check int) "tier 2 (quarantine + replay)" 2 v.Torture.tier;
  Alcotest.(check bool) "contained" true v.Torture.contained;
  Alcotest.(check bool) "no divergence" false v.Torture.diverged;
  Alcotest.(check bool) "corrupt checkpoint quarantined" true
    (Sys.file_exists (cpath ^ ".corrupt-1"));
  Alcotest.(check bool) "no replacement checkpoint left behind" true
    (not (Sys.file_exists cpath) || read_file cpath <> "this is not a snapshot\n")

let test_journal_body_refuses () =
  with_fixture_dir "bodyq" @@ fun dir ->
  let jpath = Filename.concat dir "journal.jsonl" in
  let lines = String.split_on_char '\n' (read_file jpath) in
  let mangled =
    List.mapi (fun i l -> if i = 8 then "definitely not an op" else l) lines
  in
  write_file jpath (String.concat "\n" mangled);
  let original = read_file jpath in
  let refuses case =
    let v = Torture.restore_case ~case torture_config dir in
    Alcotest.(check int) (case ^ " tier 3") 3 v.Torture.tier;
    Alcotest.(check bool) (case ^ " contained") true v.Torture.contained
  in
  refuses "journal-body";
  Alcotest.(check bool) "forensic copy quarantined" true
    (Sys.file_exists (jpath ^ ".corrupt-1"));
  Alcotest.(check string) "original journal untouched" original
    (read_file jpath);
  (* the original stays put, so a blind restart refuses again *)
  refuses "journal-body-again"

let tamper_checkpoint cpath =
  match Snapshot.of_line (String.trim (read_file cpath)) with
  | Error e -> Alcotest.failf "fixture checkpoint unreadable: %s" e
  | Ok s ->
      write_file cpath
        (Snapshot.to_line { s with Snapshot.executed = s.Snapshot.executed + 7 }
        ^ "\n")

let test_prev_checkpoint_arbitration () =
  with_fixture_dir "arbit" @@ fun dir ->
  let cpath = Filename.concat dir "checkpoint.json" in
  Alcotest.(check bool) "fixture rotated a previous checkpoint" true
    (Sys.file_exists (cpath ^ ".prev"));
  tamper_checkpoint cpath;
  (* replay and the surviving previous checkpoint agree: the tampered
     current one is the corrupt artifact — quarantine, don't refuse *)
  let v = Torture.restore_case ~case:"arbitration" torture_config dir in
  Alcotest.(check int) "tier 2" 2 v.Torture.tier;
  Alcotest.(check bool) "contained" true v.Torture.contained;
  Alcotest.(check bool) "lying checkpoint quarantined" true
    (Sys.file_exists (cpath ^ ".corrupt-1"))

let test_lone_divergence_refuses () =
  with_fixture_dir "lonediv" @@ fun dir ->
  let cpath = Filename.concat dir "checkpoint.json" in
  Sys.remove (cpath ^ ".prev");
  tamper_checkpoint cpath;
  (* no second witness: journal and checkpoint tell different stories
     and neither can be arbitrated — the restore must refuse *)
  let v = Torture.restore_case ~case:"lone-divergence" torture_config dir in
  Alcotest.(check int) "tier 3" 3 v.Torture.tier;
  Alcotest.(check bool) "contained" true v.Torture.contained

(* ---- prefix-replay property (satellite: checkpoint at prefix +
   replay of suffix == straight line, for every prefix) -------------- *)

let apply_all h s ops =
  List.iter
    (fun op ->
      match Server.apply_op s op with
      | Ok _ -> Server.commit h s op
      | Error _ -> ())
    ops

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: tl -> x :: take (k - 1) tl

let rec drop k = function
  | [] -> []
  | l when k = 0 -> l
  | _ :: tl -> drop (k - 1) tl

let test_prefix_replay () =
  List.iter
    (fun seed ->
      let ops = Torture.ops_of_seed ~count:20 ~colors:4 seed in
      let full = Torture.straight_line torture_config ops in
      List.iteri
        (fun k () ->
          let dir = temp_dir (Printf.sprintf "prefix_%d_%d" seed k) in
          Fun.protect ~finally:(fun () -> rm_rf_deep dir) @@ fun () ->
          let durable =
            { torture_config with Server.checkpoint_dir = Some dir }
          in
          (* run the prefix, checkpoint it, die without a goodbye *)
          let h = Server.host durable in
          let s = Server.open_session h Server.default_session in
          apply_all h s (take k ops);
          ignore (Server.checkpoint_session h s);
          Server.abandon_session h s;
          (* a fresh process restores the checkpointed prefix... *)
          let h2 = Server.host durable in
          let s2 = Server.open_session h2 Server.default_session in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: restored prefix %d" seed k)
            true
            (Snapshot.equal
               (Server.session_snapshot s2)
               (Torture.straight_line torture_config (take k ops)));
          (* ...and replaying the suffix lands on the straight line *)
          apply_all h2 s2 (drop k ops);
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: prefix %d + suffix = straight line"
               seed k)
            true
            (Snapshot.equal (Server.session_snapshot s2) full);
          Server.abandon_session h2 s2)
        (List.init (List.length ops + 1) (fun _ -> ())))
    [ 1; 2; 3 ]

(* ---- torture campaign smoke (full campaigns run in bench/torture) - *)

let test_torture_smoke () =
  let check name verdicts =
    let s = Torture.summarize verdicts in
    List.iter
      (fun (v : Torture.verdict) ->
        if not v.Torture.contained then
          Alcotest.failf "%s: %s uncontained: %s" name v.Torture.case
            v.Torture.detail)
      verdicts;
    Alcotest.(check int) (name ^ " divergences") 0 s.Torture.divergences;
    Alcotest.(check int) (name ^ " uncontained") 0 s.Torture.uncontained
  in
  let dir = temp_dir "campaign" in
  Fun.protect ~finally:(fun () -> rm_rf_deep dir) @@ fun () ->
  let ops = torture_ops in
  check "truncate"
    (Torture.journal_truncate_campaign ~stride:23 torture_config ~ops ~dir);
  check "flip"
    (Torture.journal_flip_campaign ~stride:23 torture_config ~ops ~dir);
  check "dup" (Torture.journal_dup_campaign torture_config ~ops ~dir);
  check "checkpoint"
    (Torture.checkpoint_campaign ~stride:11 torture_config ~ops ~dir);
  check "prefix" (Torture.prefix_campaign ~torn:false torture_config ~ops ~dir);
  check "prefix-torn"
    (Torture.prefix_campaign ~torn:true torture_config ~ops ~dir)

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse" `Quick test_protocol_parse;
          Alcotest.test_case "canonical round-trip" `Quick
            test_protocol_roundtrip;
          QCheck_alcotest.to_alcotest prop_parse_arbitrary_bytes;
          QCheck_alcotest.to_alcotest prop_parse_near_miss;
        ] );
      ( "streamed session",
        [
          Alcotest.test_case "families identical to batch" `Quick
            test_stream_families;
          Alcotest.test_case "feed order irrelevant" `Quick
            test_stream_feed_order;
          Alcotest.test_case "reductions identical to batch" `Quick
            test_stream_reductions;
          Alcotest.test_case "feed guards" `Quick test_feed_guards;
          Alcotest.test_case "reconfigure guards" `Quick
            test_reconfigure_guards;
          Alcotest.test_case "scale guard" `Quick test_scale_guard;
          Alcotest.test_case "bounded state" `Quick test_bounded_state;
        ] );
      ( "checkpoint/restore",
        [
          QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
          Alcotest.test_case "kill at round k, restore, finish" `Quick
            test_kill_restore_families;
          Alcotest.test_case "supervised crash-restart" `Quick
            test_fault_restart;
          Alcotest.test_case "prefix checkpoint + suffix replay" `Quick
            test_prefix_replay;
        ] );
      ( "tiered recovery",
        [
          Alcotest.test_case "torn tail reports its byte offset" `Quick
            test_torn_tail_offset;
          Alcotest.test_case "corrupt checkpoint quarantined" `Quick
            test_checkpoint_quarantine;
          Alcotest.test_case "corrupt journal body refuses" `Quick
            test_journal_body_refuses;
          Alcotest.test_case "previous checkpoint arbitrates" `Quick
            test_prev_checkpoint_arbitration;
          Alcotest.test_case "lone divergence refuses" `Quick
            test_lone_divergence_refuses;
          Alcotest.test_case "torture campaigns (sampled)" `Quick
            test_torture_smoke;
        ] );
    ]
