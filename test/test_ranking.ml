(* Direct tests for the EDF ranking and the cache-state helper — the two
   internal modules every policy is built on. *)

open Rrs_core

let arr round color count = { Types.round; color; count }

(* build an eligibility state + pending with prescribed contents *)
let setup ~delta ~delay arrivals =
  let instance = Instance.create ~delta ~delay ~arrivals () in
  let elig = Eligibility.create instance in
  let pending = Pending.create ~num_colors:instance.num_colors in
  (instance, elig, pending)

let begin_round elig pending ~round ~arrivals ~cached =
  let view =
    {
      Policy.round;
      mini_round = 0;
      arrivals;
      dropped = [];
      cache = [||];
      pending;
    }
  in
  Eligibility.begin_round elig ~view ~in_cache:cached

let test_nonidle_before_idle () =
  let instance, elig, pending = setup ~delta:1 ~delay:[| 4; 4 |] [ arr 0 0 1; arr 0 1 1 ] in
  ignore instance;
  (* both eligible; only color 1 has pending work *)
  begin_round elig pending ~round:0 ~arrivals:[ (0, 1); (1, 1) ]
    ~cached:(fun _ -> true);
  Pending.add pending 1 ~deadline:4 ~count:1;
  let ranked =
    Ranking.ranked_eligible elig pending ~delay:[| 4; 4 |]
      ~exclude:(fun _ -> false)
  in
  Alcotest.(check (list int)) "nonidle first" [ 1; 0 ] (List.map fst ranked);
  let key1 = List.assoc 1 ranked and key0 = List.assoc 0 ranked in
  Alcotest.(check bool) "key classes" true
    (Ranking.is_nonidle_eligible key1 && not (Ranking.is_nonidle_eligible key0))

let test_deadline_order () =
  let _, elig, pending =
    setup ~delta:1 ~delay:[| 8; 8 |] [ arr 0 0 1; arr 0 1 1 ]
  in
  begin_round elig pending ~round:0 ~arrivals:[ (0, 1); (1, 1) ]
    ~cached:(fun _ -> true);
  (* color 1's pending job has the earlier deadline *)
  Pending.add pending 0 ~deadline:8 ~count:1;
  Pending.add pending 1 ~deadline:5 ~count:1;
  let ranked =
    Ranking.ranked_eligible elig pending ~delay:[| 8; 8 |]
      ~exclude:(fun _ -> false)
  in
  Alcotest.(check (list int)) "earlier deadline first" [ 1; 0 ]
    (List.map fst ranked)

let test_delay_breaks_ties () =
  let _, elig, pending =
    setup ~delta:1 ~delay:[| 8; 4 |] [ arr 0 0 1; arr 0 1 1 ]
  in
  begin_round elig pending ~round:0 ~arrivals:[ (0, 1); (1, 1) ]
    ~cached:(fun _ -> true);
  (* same deadline; color 1 has the smaller delay bound and wins *)
  Pending.add pending 0 ~deadline:4 ~count:1;
  Pending.add pending 1 ~deadline:4 ~count:1;
  let ranked =
    Ranking.ranked_eligible elig pending ~delay:[| 8; 4 |]
      ~exclude:(fun _ -> false)
  in
  Alcotest.(check (list int)) "smaller delay bound first" [ 1; 0 ]
    (List.map fst ranked)

let test_ineligible_ranks_worst () =
  let _, elig, pending = setup ~delta:5 ~delay:[| 4; 4 |] [ arr 0 0 9; arr 0 1 1 ] in
  begin_round elig pending ~round:0 ~arrivals:[ (0, 9); (1, 1) ]
    ~cached:(fun _ -> true);
  (* color 0 wrapped (9 >= 5); color 1 did not *)
  let k0 = Ranking.key_of_color elig pending ~delay:[| 4; 4 |] 0 in
  let k1 = Ranking.key_of_color elig pending ~delay:[| 4; 4 |] 1 in
  Alcotest.(check bool) "eligible before ineligible" true
    (Ranking.compare k0 k1 < 0);
  (* ineligible colors are excluded from ranked_eligible *)
  let ranked =
    Ranking.ranked_eligible elig pending ~delay:[| 4; 4 |]
      ~exclude:(fun _ -> false)
  in
  Alcotest.(check (list int)) "only eligible" [ 0 ] (List.map fst ranked)

let test_exclude () =
  let _, elig, pending =
    setup ~delta:1 ~delay:[| 4; 4; 4 |] [ arr 0 0 1; arr 0 1 1; arr 0 2 1 ]
  in
  begin_round elig pending ~round:0 ~arrivals:[ (0, 1); (1, 1); (2, 1) ]
    ~cached:(fun _ -> true);
  let ranked =
    Ranking.ranked_eligible elig pending ~delay:[| 4; 4; 4 |]
      ~exclude:(fun c -> c = 1)
  in
  Alcotest.(check (list int)) "excluded" [ 0; 2 ] (List.map fst ranked)

let test_timestamp_order () =
  let _, elig, pending =
    setup ~delta:1 ~delay:[| 2; 2; 2 |]
      [ arr 0 0 1; arr 0 1 1; arr 2 2 1 ]
  in
  begin_round elig pending ~round:0 ~arrivals:[ (0, 1); (1, 1) ]
    ~cached:(fun _ -> true);
  begin_round elig pending ~round:1 ~arrivals:[] ~cached:(fun _ -> true);
  begin_round elig pending ~round:2 ~arrivals:[ (2, 1) ] ~cached:(fun _ -> true);
  begin_round elig pending ~round:3 ~arrivals:[] ~cached:(fun _ -> true);
  begin_round elig pending ~round:4 ~arrivals:[] ~cached:(fun _ -> true);
  (* colors 0,1 wrapped at round 0 (timestamp 0 after round 2); color 2
     wrapped at round 2 (timestamp 2 after round 4) *)
  Alcotest.(check (list int)) "most recent first, ties by id" [ 2; 0; 1 ]
    (Ranking.timestamp_order elig [ 0; 1; 2 ])

(* Cache_state *)

let test_cache_state_mechanics () =
  let cs = Cache_state.create ~num_colors:6 ~distinct_slots:3 in
  Alcotest.(check (list int)) "starts empty" [] (Cache_state.cached_colors cs);
  Cache_state.assign cs ~desired:[ 4; 1 ];
  Alcotest.(check bool) "mem 4" true (Cache_state.mem cs 4);
  Alcotest.(check bool) "not mem 0" false (Cache_state.mem cs 0);
  Alcotest.(check (list int)) "sorted colors" [ 1; 4 ]
    (Cache_state.cached_colors cs);
  (* stability: 1 keeps its slot across reassignments *)
  let before = Cache_state.distinct cs in
  Cache_state.assign cs ~desired:[ 1; 5; 2 ];
  let after = Cache_state.distinct cs in
  let slot_of arr c =
    let found = ref (-1) in
    Array.iteri (fun i x -> if x = c then found := i) arr;
    !found
  in
  Alcotest.(check int) "1 kept in place" (slot_of before 1) (slot_of after 1);
  Alcotest.(check bool) "4 evicted" false (Cache_state.mem cs 4);
  (* replication doubles the assignment *)
  let full = Cache_state.to_assignment cs ~replicated:true in
  Alcotest.(check int) "replicated length" 6 (Array.length full);
  Array.iteri
    (fun i c -> Alcotest.(check int) "mirror" c full.(i + 3))
    (Array.sub full 0 3);
  let flat = Cache_state.to_assignment cs ~replicated:false in
  Alcotest.(check int) "flat length" 3 (Array.length flat)

let prop_stable_assign_sound =
  let open QCheck in
  Test.make ~count:300 ~name:"stable_assign: desired placed, stayers fixed"
    (pair
       (array_of_size (Gen.int_range 1 6) (int_range (-1) 9))
       (list_of_size (Gen.int_range 0 6) (int_range 0 9)))
    (fun (current, desired_raw) ->
      let desired = List.sort_uniq compare desired_raw in
      assume (List.length desired <= Array.length current);
      (* current must be duplicate-free apart from black *)
      let non_black = List.filter (( <> ) (-1)) (Array.to_list current) in
      assume (List.length non_black = List.length (List.sort_uniq compare non_black));
      let result = Policy.stable_assign ~current ~desired in
      (* every desired color appears exactly once *)
      List.for_all
        (fun c ->
          Array.to_list result |> List.filter (( = ) c) |> List.length = 1)
        desired
      && (* colors already in place stayed in place *)
      Array.for_all Fun.id
        (Array.mapi
           (fun i c -> if List.mem c desired then result.(i) = c else true)
           current))

(* Ranking.Index vs the list-sort oracle *)

(* A policy that, every round, compares the delta-maintained index
   against a from-scratch re-sort of the same state — both orders, over
   the whole eligible set, not just a prefix — then acts like ΔLRU so
   the run visits realistic cache configurations. *)
let index_check_policy (instance : Instance.t) ~n =
  let elig = Eligibility.create instance in
  let cache =
    Cache_state.create ~num_colors:instance.num_colors
      ~distinct_slots:(n / 2)
  in
  let index = Ranking.Index.lazily elig ~delay:instance.delay in
  let mismatches = ref 0 in
  let reconfigure (view : Policy.view) =
    Eligibility.begin_round elig ~view ~in_cache:(Cache_state.mem cache);
    let idx = index view.pending in
    let oracle_rank =
      Ranking.ranked_eligible elig view.pending ~delay:instance.delay
        ~exclude:(fun _ -> false)
    in
    if Ranking.Index.ranked_all idx <> oracle_rank then incr mismatches;
    let oracle_recency =
      Ranking.timestamp_order elig (Eligibility.eligible_colors elig)
    in
    if Ranking.Index.recency_all idx <> oracle_recency then incr mismatches;
    if Ranking.Index.eligible_count idx <> List.length oracle_rank then
      incr mismatches;
    Cache_state.assign cache ~desired:(Policy.take (n / 2) oracle_recency);
    Cache_state.to_assignment cache ~replicated:true
  in
  (mismatches, { Policy.name = "index-check"; reconfigure })

let drive_index_check instance =
  let mismatches, policy = index_check_policy instance ~n:8 in
  ignore (Engine.run_policy (Engine.config ~n:8 ()) instance policy);
  !mismatches

let test_index_matches_oracle () =
  List.iter
    (fun (id, seed) ->
      let f = Option.get (Rrs_workload.Families.find id) in
      Alcotest.(check int)
        (Printf.sprintf "%s-s%d mismatches" id seed)
        0
        (drive_index_check (f.build ~seed)))
    [ ("uniform", 1); ("bursty", 1); ("flash-crowd", 1); ("unbatched", 1) ]

let prop_index_matches_oracle =
  let gen =
    let open QCheck.Gen in
    let* num_colors = int_range 1 6 in
    let* delta = int_range 1 3 in
    let* delay = array_size (return num_colors) (int_range 1 12) in
    let* arrivals =
      list_size (int_range 0 40)
        (let* round = int_range 0 30 in
         let* color = int_range 0 (num_colors - 1) in
         let* count = int_range 1 5 in
         return { Types.round; color; count })
    in
    return (Instance.create ~delta ~delay ~arrivals ())
  in
  QCheck.Test.make ~count:100 ~name:"index = oracle after every round"
    (QCheck.make gen ~print:(fun i -> Format.asprintf "%a" Instance.pp_full i))
    (fun instance -> drive_index_check instance = 0)

(* ------------------------------------------------------------------ *)
(* Packed keys                                                         *)
(* ------------------------------------------------------------------ *)

(* the load-bearing property of the flat hot path: native [<] on packed
   keys is exactly the lexicographic order on the unpacked tuples *)
let packed_field_gen =
  let open QCheck.Gen in
  let* klass = int_range 0 3 in
  let* deadline = int_range 0 (Packed.max_deadline - 1) in
  let* delay = int_range 0 (Packed.max_delay - 1) in
  let* color = int_range 0 (Packed.max_colors - 1) in
  return (klass, deadline, delay, color)

let prop_packed_key_is_lex_order =
  QCheck.Test.make ~count:1000 ~name:"packed key compare = tuple compare"
    (QCheck.make QCheck.Gen.(pair packed_field_gen packed_field_gen))
    (fun ((ka, da, ya, ca), (kb, db, yb, cb)) ->
      let a = Packed.pack_key ~klass:ka ~deadline:da ~delay:ya ~color:ca in
      let b = Packed.pack_key ~klass:kb ~deadline:db ~delay:yb ~color:cb in
      compare a b = compare (ka, da, ya, ca) (kb, db, yb, cb)
      && Packed.key_klass a = ka
      && Packed.key_deadline a = da
      && Packed.key_delay a = ya
      && Packed.key_color a = ca)

let prop_packed_recency_order =
  QCheck.Test.make ~count:1000 ~name:"packed recency = (-ts, color) order"
    (QCheck.make
       QCheck.Gen.(
         pair
           (pair (int_range (-1) 100000) (int_range 0 (Packed.max_colors - 1)))
           (pair (int_range (-1) 100000) (int_range 0 (Packed.max_colors - 1)))))
    (fun ((ta, ca), (tb, cb)) ->
      let a = Packed.pack_recency ~timestamp:ta ~color:ca in
      let b = Packed.pack_recency ~timestamp:tb ~color:cb in
      compare a b = compare (-ta, ca) (-tb, cb)
      && Packed.recency_timestamp a = ta
      && Packed.recency_color a = ca)

let test_packed_overflow_guards () =
  let ok ~klass ~deadline ~delay ~color =
    ignore (Packed.pack_key ~klass ~deadline ~delay ~color)
  in
  (* the exact field boundaries round-trip *)
  let top =
    Packed.pack_key ~klass:3 ~deadline:(Packed.max_deadline - 1)
      ~delay:(Packed.max_delay - 1) ~color:(Packed.max_colors - 1)
  in
  Alcotest.(check int) "top klass" 3 (Packed.key_klass top);
  Alcotest.(check int) "top deadline" (Packed.max_deadline - 1)
    (Packed.key_deadline top);
  Alcotest.(check int) "top delay" (Packed.max_delay - 1)
    (Packed.key_delay top);
  Alcotest.(check int) "top color" (Packed.max_colors - 1)
    (Packed.key_color top);
  Alcotest.(check bool) "packed values stay non-negative" true (top >= 0);
  (* one past each field raises *)
  Alcotest.check_raises "klass overflow"
    (Invalid_argument "Packed.pack_key: klass") (fun () ->
      ok ~klass:4 ~deadline:0 ~delay:0 ~color:0);
  Alcotest.check_raises "deadline overflow"
    (Invalid_argument "Packed.pack_key: deadline overflow") (fun () ->
      ok ~klass:0 ~deadline:Packed.max_deadline ~delay:0 ~color:0);
  Alcotest.check_raises "delay overflow"
    (Invalid_argument "Packed.pack_key: delay overflow") (fun () ->
      ok ~klass:0 ~deadline:0 ~delay:Packed.max_delay ~color:0);
  Alcotest.check_raises "color overflow"
    (Invalid_argument "Packed: color out of range") (fun () ->
      ok ~klass:0 ~deadline:0 ~delay:0 ~color:Packed.max_colors);
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Packed.pack_key: delay overflow") (fun () ->
      ok ~klass:0 ~deadline:0 ~delay:(-1) ~color:0);
  Alcotest.check_raises "recency timestamp underflow"
    (Invalid_argument "Packed.pack_recency: timestamp overflow") (fun () ->
      ignore (Packed.pack_recency ~timestamp:(-2) ~color:0));
  Alcotest.check_raises "pair value overflow"
    (Invalid_argument "Packed.pack_pair: value overflow") (fun () ->
      ignore (Packed.pack_pair ~value:Packed.max_pair_value ~color:0))

(* an index refuses instances whose delay bounds don't fit the field *)
let test_index_rejects_oversized_delay () =
  let delay = [| 4; Packed.max_delay |] in
  let instance =
    Instance.create ~delta:1 ~delay ~arrivals:[ arr 0 0 1 ] ()
  in
  let elig = Eligibility.create instance in
  Alcotest.check_raises "index build rejects"
    (Invalid_argument "Ranking.Index: delay bound exceeds the packed field")
    (fun () ->
      let pending = Pending.create ~num_colors:2 in
      ignore (Ranking.Index.lazily elig ~delay pending))

let () =
  Alcotest.run "ranking"
    [
      ( "edf ranking",
        [
          Alcotest.test_case "nonidle first" `Quick test_nonidle_before_idle;
          Alcotest.test_case "deadline order" `Quick test_deadline_order;
          Alcotest.test_case "delay tie-break" `Quick test_delay_breaks_ties;
          Alcotest.test_case "ineligible worst" `Quick
            test_ineligible_ranks_worst;
          Alcotest.test_case "exclude" `Quick test_exclude;
          Alcotest.test_case "timestamp order" `Quick test_timestamp_order;
        ] );
      ( "cache state",
        [
          Alcotest.test_case "mechanics" `Quick test_cache_state_mechanics;
          QCheck_alcotest.to_alcotest prop_stable_assign_sound;
        ] );
      ( "incremental index",
        [
          Alcotest.test_case "families match oracle" `Quick
            test_index_matches_oracle;
          QCheck_alcotest.to_alcotest prop_index_matches_oracle;
        ] );
      ( "packed keys",
        [
          QCheck_alcotest.to_alcotest prop_packed_key_is_lex_order;
          QCheck_alcotest.to_alcotest prop_packed_recency_order;
          Alcotest.test_case "overflow guards" `Quick
            test_packed_overflow_guards;
          Alcotest.test_case "index rejects oversized delay" `Quick
            test_index_rejects_oversized_delay;
        ] );
    ]
