(* The perf-regression gate's comparison semantics: identity passes, a
   synthetic injected regression fails (the acceptance property of
   bench/check.exe), tolerances absorb measurement noise, deterministic
   metrics gate exactly, and the report ranks regressions first. *)

module B = Rrs_obs.Benchdiff
module Run_summary = Rrs_obs.Run_summary

let summary ?(id = "core-scaling-c256") ?(reconfig = 1536) ?(drop = 0) analysis
    =
  Run_summary.make ~id ~kind:"bench" ~seed:1 ~config:[]
    ~reconfig_cost:reconfig ~drop_cost:drop ~analysis ()

let base_analysis =
  [
    ("rounds", 6145.0);
    ("incremental_seconds", 0.02);
    ("incremental_rounds_per_sec", 300000.0);
    ("rebuild_rounds_per_sec", 200000.0);
    ("speedup", 1.5);
    ("ranking_updates", 1251.0);
    ("identical", 1.0);
    ("alloc_minor_words_per_round", 500.0);
  ]

let baseline () = [ summary base_analysis ]

let with_metric name v =
  [ summary (List.map (fun (k, x) -> if k = name then (k, v) else (k, x)) base_analysis) ]

let compare_one current =
  B.compare_summaries ~baseline:(baseline ()) ~current ()

let regressed_metrics report =
  List.filter_map
    (fun (d : B.delta) ->
      if d.verdict = B.Regression then Some d.metric else None)
    report.B.deltas

let test_identity_passes () =
  let report = compare_one (baseline ()) in
  Alcotest.(check bool) "ok" true (B.ok report);
  Alcotest.(check int) "no regressions" 0 report.B.regressions;
  Alcotest.(check bool) "PASS rendered" true
    (String.ends_with ~suffix:"PASS\n" (B.render report))

(* the acceptance property: a doctored current artifact must fail *)
let test_injected_regressions_fail () =
  let cases =
    [
      (* the machine-relative gate: speedup collapse beyond 35% *)
      ("analysis.speedup", with_metric "speedup" 0.9);
      (* deterministic work count growth beyond 10% *)
      ("analysis.ranking_updates", with_metric "ranking_updates" 1500.0);
      (* allocation growth beyond 8% and 16 words *)
      ( "analysis.alloc_minor_words_per_round",
        with_metric "alloc_minor_words_per_round" 700.0 );
      (* exact metrics: any drift at all *)
      ("analysis.identical", with_metric "identical" 0.0);
      ("analysis.rounds", with_metric "rounds" 6146.0);
      (* order-of-magnitude throughput collapse *)
      ( "analysis.incremental_rounds_per_sec",
        with_metric "incremental_rounds_per_sec" 50000.0 );
      (* cost drift: the component and the derived total both gate *)
      ("cost.reconfig|cost.total", [ summary ~reconfig:1538 base_analysis ]);
    ]
  in
  List.iter
    (fun (metrics, current) ->
      let metric = String.split_on_char '|' metrics in
      let label = String.concat "," metric in
      let report = compare_one current in
      Alcotest.(check bool) (label ^ " fails the gate") false (B.ok report);
      Alcotest.(check (list string))
        (label ^ " regressions exact")
        metric
        (List.sort compare (regressed_metrics report));
      Alcotest.(check bool)
        (label ^ " FAIL rendered")
        true
        (String.ends_with ~suffix:"FAIL\n" (B.render report)))
    cases

let test_noise_within_tolerance_passes () =
  let current =
    [
      summary
        [
          ("rounds", 6145.0);
          ("incremental_seconds", 0.031); (* wall clock: info, never gated *)
          ("incremental_rounds_per_sec", 200000.0); (* -33% < 75% *)
          ("rebuild_rounds_per_sec", 150000.0);
          ("speedup", 1.2); (* -20% < 35% *)
          ("ranking_updates", 1251.0);
          ("identical", 1.0);
          ("alloc_minor_words_per_round", 510.0); (* +2% < 8% *)
        ];
    ]
  in
  Alcotest.(check bool) "within tolerance" true (B.ok (compare_one current))

let test_improvements_pass () =
  let current =
    [
      summary
        (List.map
           (fun (k, v) ->
             match k with
             | "speedup" -> (k, 2.5)
             | "ranking_updates" -> (k, 900.0)
             | "alloc_minor_words_per_round" -> (k, 300.0)
             | _ -> (k, v))
           base_analysis);
    ]
  in
  let report = compare_one current in
  Alcotest.(check bool) "improvements are not regressions" true (B.ok report);
  Alcotest.(check bool) "improvement verdicts present" true
    (List.exists
       (fun (d : B.delta) -> d.verdict = B.Improvement)
       report.B.deltas)

let test_missing_id_and_metric_are_regressions () =
  (* a vanished record *)
  let report = compare_one [] in
  Alcotest.(check bool) "missing id fails" false (B.ok report);
  Alcotest.(check (list string))
    "missing id listed" [ "core-scaling-c256" ] report.B.missing_ids;
  (* a metric the current run stopped producing *)
  let report =
    compare_one [ summary (List.remove_assoc "speedup" base_analysis) ]
  in
  Alcotest.(check bool) "dropped metric fails" false (B.ok report);
  Alcotest.(check (list string))
    "dropped metric reported" [ "analysis.speedup" ]
    (regressed_metrics report);
  (* a new id is informational, not a failure *)
  let report =
    compare_one (baseline () @ [ summary ~id:"core-scaling-c512" base_analysis ])
  in
  Alcotest.(check bool) "new id passes" true (B.ok report);
  Alcotest.(check (list string))
    "new id listed" [ "core-scaling-c512" ] report.B.new_ids

let test_regressions_ranked_first () =
  let current =
    [
      summary
        (List.map
           (fun (k, v) ->
             match k with
             | "speedup" -> (k, 0.5)
             | "alloc_minor_words_per_round" -> (k, 400.0) (* improvement *)
             | _ -> (k, v))
           base_analysis);
    ]
  in
  let report = compare_one current in
  match report.B.deltas with
  | first :: _ ->
      Alcotest.(check string) "worst first" "analysis.speedup" first.B.metric;
      Alcotest.(check bool) "it is a regression" true
        (first.B.verdict = B.Regression)
  | [] -> Alcotest.fail "no deltas"

let test_custom_rules_take_precedence () =
  let rules = [ B.rule "analysis.speedup" B.Info ] in
  let report =
    B.compare_summaries ~rules ~baseline:(baseline ())
      ~current:(with_metric "speedup" 0.1) ()
  in
  Alcotest.(check bool) "speedup demoted to info" true (B.ok report)

let test_compare_files_roundtrip () =
  let dir = Filename.temp_dir "benchdiff" "" in
  let write name summaries =
    let path = Filename.concat dir name in
    Out_channel.with_open_text path (fun oc ->
        List.iter (Run_summary.write oc) summaries);
    path
  in
  let b = write "baseline.jsonl" (baseline ()) in
  let good = write "good.jsonl" (baseline ()) in
  let bad = write "bad.jsonl" (with_metric "speedup" 0.5) in
  (match B.compare_files ~baseline:b ~current:good () with
  | Ok report -> Alcotest.(check bool) "files: identity passes" true (B.ok report)
  | Error msg -> Alcotest.fail msg);
  (match B.compare_files ~baseline:b ~current:bad () with
  | Ok report ->
      Alcotest.(check bool) "files: regression fails" false (B.ok report)
  | Error msg -> Alcotest.fail msg);
  match B.compare_files ~baseline:b ~current:(Filename.concat dir "nope") () with
  | Ok _ -> Alcotest.fail "unreadable current must error"
  | Error _ -> ()

let () =
  Alcotest.run "benchdiff"
    [
      ( "gate",
        [
          Alcotest.test_case "identity passes" `Quick test_identity_passes;
          Alcotest.test_case "injected regressions fail" `Quick
            test_injected_regressions_fail;
          Alcotest.test_case "noise within tolerance" `Quick
            test_noise_within_tolerance_passes;
          Alcotest.test_case "improvements pass" `Quick test_improvements_pass;
          Alcotest.test_case "missing ids and metrics" `Quick
            test_missing_id_and_metric_are_regressions;
          Alcotest.test_case "ranking" `Quick test_regressions_ranked_first;
          Alcotest.test_case "custom rules" `Quick
            test_custom_rules_take_precedence;
          Alcotest.test_case "compare_files" `Quick test_compare_files_roundtrip;
        ] );
    ]
