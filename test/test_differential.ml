(* The decision-identity harness for the incremental ranking core: every
   policy of the ΔLRU/EDF family, run in Incremental and in Rebuild mode
   on the same instance, must produce the same Engine.result down to the
   final cache and the full recorded schedule.  Instances cover the
   workload families, the Appendix A/B adversarial constructions, and
   QCheck-random instances (including non-power-of-two delays). *)

open Rrs_core
module Families = Rrs_workload.Families
module Adv = Rrs_workload.Adversarial

let policies : (string * (Ranking.mode -> Instance.t -> n:int -> Policy.t)) list
    =
  [
    ("dlru", fun mode instance ~n -> (Delta_lru.make ~mode instance ~n).policy);
    ("edf", fun mode instance ~n -> (Edf_policy.make ~mode instance ~n).policy);
    ( "seq-edf",
      fun mode instance ~n -> (Edf_policy.make_seq ~mode instance ~n).policy );
    ("dlru-edf", fun mode instance ~n -> (Lru_edf.make ~mode instance ~n).policy);
  ]

let run_both ?(n = 8) instance make =
  let run mode =
    Engine.run_policy
      (Engine.config ~n ~record_schedule:true ())
      instance (make mode instance ~n)
  in
  (run Ranking.Incremental, run Ranking.Rebuild)

(* Structural equality covers every field: cost, counters, the per-color
   arrays, final_cache and the recorded schedule. *)
let check_identical label instance =
  List.iter
    (fun (pname, make) ->
      let incr, rebuild = run_both instance make in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s identical" pname label)
        true (incr = rebuild))
    policies;
  let par mode = Par_edf.run ~mode instance ~m:2 in
  Alcotest.(check bool)
    (Printf.sprintf "par-edf/%s identical" label)
    true
    (par Ranking.Incremental = par Ranking.Rebuild)

let test_families () =
  List.iter
    (fun id ->
      let f = Option.get (Families.find id) in
      List.iter
        (fun seed ->
          check_identical (Printf.sprintf "%s-s%d" id seed) (f.build ~seed))
        [ 1; 2 ])
    [ "uniform"; "zipf"; "bursty"; "router"; "flash-crowd"; "oversized";
      "unbatched" ]

let test_adversarial () =
  check_identical "appendix-a"
    (Adv.dlru_instance { n = 8; delta = 2; j = 5; k = 7 });
  check_identical "appendix-b"
    (Adv.edf_instance { n = 2; delta = 3; j = 2; k = 6 })

let test_scaled () =
  (* the scaling knob the bench sweeps, at a testable size *)
  let f = Option.get (Families.find "uniform") in
  let scale = Option.get f.scale in
  check_identical "uniform-c64" (scale ~num_colors:64 ~seed:3)

(* Random instances: arbitrary rounds, arbitrary (not power-of-two)
   delay bounds, duplicate arrivals — everything Instance.create
   accepts. *)
let instance_gen =
  let open QCheck.Gen in
  let* num_colors = int_range 1 6 in
  let* delta = int_range 1 3 in
  let* delay = array_size (return num_colors) (int_range 1 12) in
  let* arrivals =
    list_size (int_range 0 40)
      (let* round = int_range 0 30 in
       let* color = int_range 0 (num_colors - 1) in
       let* count = int_range 1 5 in
       return { Types.round; color; count })
  in
  return (Instance.create ~delta ~delay ~arrivals ())

let arbitrary_instance =
  QCheck.make instance_gen ~print:(fun i ->
      Format.asprintf "%a" Instance.pp_full i)

let prop_random_instances =
  QCheck.Test.make ~count:60 ~name:"identical decisions on random instances"
    arbitrary_instance (fun instance ->
      List.for_all
        (fun (_, make) ->
          let incr, rebuild = run_both instance make in
          incr = rebuild)
        policies
      && Par_edf.run ~mode:Ranking.Incremental instance ~m:2
         = Par_edf.run ~mode:Ranking.Rebuild instance ~m:2)

(* Double-speed engines exercise two reconfigurations per round against
   one begin_round epoch update — a different event interleaving. *)
let test_double_speed () =
  let f = Option.get (Families.find "bursty") in
  let instance = f.build ~seed:4 in
  let run mode =
    Engine.run_policy
      (Engine.config ~n:8 ~mini_rounds:2 ~record_schedule:true ())
      instance
      (Edf_policy.make_seq ~mode instance ~n:8).policy
  in
  Alcotest.(check bool)
    "ds-seq-edf identical" true
    (run Ranking.Incremental = run Ranking.Rebuild)

(* The watchdog's non-perturbation guarantee: attaching a Record-mode
   watchdog to a fully instrumented run must leave Engine.result
   structurally identical to the uninstrumented run — same cost, same
   counters, same recorded schedule.  Doubles as an empirical check that
   the live Lemma 3.3 / 3.4 prefix bounds hold on every family and both
   appendix constructions. *)
module Watchdog = Rrs_robust.Watchdog
module Sink = Rrs_obs.Sink

(* the bool says whether the policy lives inside the ΔLRU budgets —
   the EDF baselines emit the same eligibility events but reconfigure
   freely, so Lemma 3.3/3.4 do not bound them *)
let sinked_policies :
    (string * bool * (sink:Sink.t -> Instance.t -> n:int -> Policy.t)) list =
  [
    ( "dlru",
      true,
      fun ~sink instance ~n -> (Delta_lru.make ~sink instance ~n).policy );
    ( "edf",
      false,
      fun ~sink instance ~n -> (Edf_policy.make ~sink instance ~n).policy );
    ( "seq-edf",
      false,
      fun ~sink instance ~n -> (Edf_policy.make_seq ~sink instance ~n).policy );
    ( "dlru-edf",
      true,
      fun ~sink instance ~n -> (Lru_edf.make ~sink instance ~n).policy );
  ]

(* [rate_limited] says the instance lives in the layer the lemmas are
   stated for; the batched/unbatched families feed reduction pipelines
   and running a policy on them directly is outside the bounds *)
let check_watchdog_inert ?(rate_limited = true) label instance =
  List.iter
    (fun (pname, budgeted, make) ->
      let lemma_bounds = budgeted && rate_limited in
      let n = 8 in
      let run sink =
        Engine.run_policy
          (Engine.config ~n ~record_schedule:true ~sink ())
          instance
          (make ~sink instance ~n)
      in
      let plain = run Sink.null in
      let wd =
        Watchdog.create ~policy:Watchdog.Record ~lemma_bounds
          ~delta:instance.Instance.delta ()
      in
      let watched = run (Watchdog.attach wd Sink.null) in
      Watchdog.finish wd;
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s watchdog-inert" pname label)
        true (plain = watched);
      (match Watchdog.violations wd with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%s/%s: watchdog flagged %a after %d events" pname
            label Watchdog.pp_violation v
            (Watchdog.events_seen wd));
      if Watchdog.events_seen wd = 0 then
        Alcotest.failf "%s/%s: instrumented run emitted no events" pname label)
    sinked_policies

let test_watchdog_record_inert () =
  List.iter
    (fun id ->
      let f = Option.get (Families.find id) in
      let rate_limited = f.layer = Families.Rate_limited in
      List.iter
        (fun seed ->
          check_watchdog_inert ~rate_limited
            (Printf.sprintf "%s-s%d" id seed)
            (f.build ~seed))
        [ 1; 2 ])
    [ "uniform"; "zipf"; "bursty"; "router"; "flash-crowd"; "oversized";
      "unbatched" ];
  check_watchdog_inert "appendix-a"
    (Adv.dlru_instance { n = 8; delta = 2; j = 5; k = 7 });
  check_watchdog_inert "appendix-b"
    (Adv.edf_instance { n = 2; delta = 3; j = 2; k = 6 })

(* The live-telemetry plane's non-perturbation guarantee: a run with a
   flight recorder attached as its sink and a heartbeat observing every
   round must leave Engine.result structurally identical — including
   the recorded schedule — to the bare Sink.null run.  Both sides must
   actually have telemetered: a recorder that saw no events or a
   heartbeat that observed no rounds would make the equality vacuous. *)
module Flight_recorder = Rrs_obs.Flight_recorder
module Heartbeat = Rrs_obs.Heartbeat

let check_telemetry_inert label instance =
  List.iter
    (fun (pname, _, make) ->
      let n = 8 in
      let run sink heartbeat =
        Engine.run_policy
          (Engine.config ~n ~record_schedule:true ~sink ?heartbeat ())
          instance
          (make ~sink instance ~n)
      in
      let plain = run Sink.null None in
      let recorder = Flight_recorder.create ~capacity:128 () in
      let hb = Heartbeat.create ~every_rounds:32 () in
      let telemetered = run (Flight_recorder.sink recorder) (Some hb) in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s telemetry-inert" pname label)
        true
        (plain = telemetered);
      if Flight_recorder.events_recorded recorder = 0 then
        Alcotest.failf "%s/%s: recorder saw no events" pname label;
      if Heartbeat.rounds_observed hb = 0 then
        Alcotest.failf "%s/%s: heartbeat observed no rounds" pname label)
    sinked_policies

let test_telemetry_inert () =
  List.iter
    (fun id ->
      let f = Option.get (Families.find id) in
      List.iter
        (fun seed ->
          check_telemetry_inert
            (Printf.sprintf "%s-s%d" id seed)
            (f.build ~seed))
        [ 1; 2 ])
    [ "uniform"; "bursty"; "router" ];
  check_telemetry_inert "appendix-a"
    (Adv.dlru_instance { n = 8; delta = 2; j = 5; k = 7 })

let () =
  Alcotest.run "differential"
    [
      ( "incremental vs rebuild",
        [
          Alcotest.test_case "workload families" `Quick test_families;
          Alcotest.test_case "appendix A/B" `Quick test_adversarial;
          Alcotest.test_case "scaled universe" `Quick test_scaled;
          Alcotest.test_case "double speed" `Quick test_double_speed;
          QCheck_alcotest.to_alcotest prop_random_instances;
        ] );
      ( "watchdog non-perturbation",
        [
          Alcotest.test_case "record mode is inert" `Quick
            test_watchdog_record_inert;
          Alcotest.test_case "recorder + heartbeat are inert" `Quick
            test_telemetry_inert;
        ] );
    ]
