(* The decision-identity harness for the incremental ranking core: every
   policy of the ΔLRU/EDF family, run in Incremental and in Rebuild mode
   on the same instance, must produce the same Engine.result down to the
   final cache and the full recorded schedule.  Instances cover the
   workload families, the Appendix A/B adversarial constructions, and
   QCheck-random instances (including non-power-of-two delays). *)

open Rrs_core
module Families = Rrs_workload.Families
module Adv = Rrs_workload.Adversarial

let policies : (string * (Ranking.mode -> Instance.t -> n:int -> Policy.t)) list
    =
  [
    ("dlru", fun mode instance ~n -> (Delta_lru.make ~mode instance ~n).policy);
    ("edf", fun mode instance ~n -> (Edf_policy.make ~mode instance ~n).policy);
    ( "seq-edf",
      fun mode instance ~n -> (Edf_policy.make_seq ~mode instance ~n).policy );
    ("dlru-edf", fun mode instance ~n -> (Lru_edf.make ~mode instance ~n).policy);
  ]

let run_both ?(n = 8) instance make =
  let run mode =
    Engine.run_policy
      (Engine.config ~n ~record_schedule:true ())
      instance (make mode instance ~n)
  in
  (run Ranking.Incremental, run Ranking.Rebuild)

(* Structural equality covers every field: cost, counters, the per-color
   arrays, final_cache and the recorded schedule. *)
let check_identical label instance =
  List.iter
    (fun (pname, make) ->
      let incr, rebuild = run_both instance make in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s identical" pname label)
        true (incr = rebuild))
    policies;
  let par mode = Par_edf.run ~mode instance ~m:2 in
  Alcotest.(check bool)
    (Printf.sprintf "par-edf/%s identical" label)
    true
    (par Ranking.Incremental = par Ranking.Rebuild)

let test_families () =
  List.iter
    (fun id ->
      let f = Option.get (Families.find id) in
      List.iter
        (fun seed ->
          check_identical (Printf.sprintf "%s-s%d" id seed) (f.build ~seed))
        [ 1; 2 ])
    [ "uniform"; "zipf"; "bursty"; "router"; "flash-crowd"; "oversized";
      "unbatched" ]

let test_adversarial () =
  check_identical "appendix-a"
    (Adv.dlru_instance { n = 8; delta = 2; j = 5; k = 7 });
  check_identical "appendix-b"
    (Adv.edf_instance { n = 2; delta = 3; j = 2; k = 6 })

let test_scaled () =
  (* the scaling knob the bench sweeps, at a testable size *)
  let f = Option.get (Families.find "uniform") in
  let scale = Option.get f.scale in
  check_identical "uniform-c64" (scale ~num_colors:64 ~seed:3)

(* Random instances: arbitrary rounds, arbitrary (not power-of-two)
   delay bounds, duplicate arrivals — everything Instance.create
   accepts. *)
let instance_gen =
  let open QCheck.Gen in
  let* num_colors = int_range 1 6 in
  let* delta = int_range 1 3 in
  let* delay = array_size (return num_colors) (int_range 1 12) in
  let* arrivals =
    list_size (int_range 0 40)
      (let* round = int_range 0 30 in
       let* color = int_range 0 (num_colors - 1) in
       let* count = int_range 1 5 in
       return { Types.round; color; count })
  in
  return (Instance.create ~delta ~delay ~arrivals ())

let arbitrary_instance =
  QCheck.make instance_gen ~print:(fun i ->
      Format.asprintf "%a" Instance.pp_full i)

let prop_random_instances =
  QCheck.Test.make ~count:60 ~name:"identical decisions on random instances"
    arbitrary_instance (fun instance ->
      List.for_all
        (fun (_, make) ->
          let incr, rebuild = run_both instance make in
          incr = rebuild)
        policies
      && Par_edf.run ~mode:Ranking.Incremental instance ~m:2
         = Par_edf.run ~mode:Ranking.Rebuild instance ~m:2)

(* Double-speed engines exercise two reconfigurations per round against
   one begin_round epoch update — a different event interleaving. *)
let test_double_speed () =
  let f = Option.get (Families.find "bursty") in
  let instance = f.build ~seed:4 in
  let run mode =
    Engine.run_policy
      (Engine.config ~n:8 ~mini_rounds:2 ~record_schedule:true ())
      instance
      (Edf_policy.make_seq ~mode instance ~n:8).policy
  in
  Alcotest.(check bool)
    "ds-seq-edf identical" true
    (run Ranking.Incremental = run Ranking.Rebuild)

let () =
  Alcotest.run "differential"
    [
      ( "incremental vs rebuild",
        [
          Alcotest.test_case "workload families" `Quick test_families;
          Alcotest.test_case "appendix A/B" `Quick test_adversarial;
          Alcotest.test_case "scaled universe" `Quick test_scaled;
          Alcotest.test_case "double speed" `Quick test_double_speed;
          QCheck_alcotest.to_alcotest prop_random_instances;
        ] );
    ]
