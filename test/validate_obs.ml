(* validate_obs FILE — the smoke-check half of the runtest pipeline:
   reads a JSONL artifact, requires at least one run_summary, and checks
   that every run_summary line re-serialises byte for byte (the
   canonical-writer contract of doc/TELEMETRY.md). *)

let () =
  if Array.length Sys.argv <> 2 then (
    prerr_endline "usage: validate_obs FILE";
    exit 2);
  let path = Sys.argv.(1) in
  (match Rrs_obs.Run_summary.load path with
  | Error msg ->
      Printf.eprintf "validate_obs: %s: %s\n" path msg;
      exit 1
  | Ok [] ->
      Printf.eprintf "validate_obs: %s: no run_summary lines\n" path;
      exit 1
  | Ok summaries ->
      Printf.printf "validate_obs: %s: %d run summaries\n" path
        (List.length summaries));
  let lines = In_channel.with_open_text path In_channel.input_lines in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match Rrs_obs.Run_summary.of_line line with
        | Error _ -> () (* other line types (events, samples) are fine *)
        | Ok s ->
            let reprinted = Rrs_obs.Run_summary.to_line s in
            if reprinted <> line then (
              Printf.eprintf
                "validate_obs: line does not round-trip:\n  in:  %s\n  out: %s\n"
                line reprinted;
              exit 1))
    lines;
  print_endline "validate_obs: ok"
