(* Tests for the observability layer (Rrs_obs): canonical JSON, event
   sinks, the metrics registry, run_summary artifacts — and the contract
   that matters most: the event stream is a faithful superset of the
   engine's and the eligibility machinery's own counters. *)

open Rrs_core
module Json = Rrs_obs.Json
module Event = Rrs_obs.Event
module Sink = Rrs_obs.Sink
module Metrics = Rrs_obs.Metrics
module Run_summary = Rrs_obs.Run_summary
module Families = Rrs_workload.Families

(* ------------------------------------------------------------------ *)
(* canonical JSON                                                      *)
(* ------------------------------------------------------------------ *)

let test_json_value_roundtrip () =
  let values =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 2.5;
      Json.Float 1e-9;
      Json.Float 1024.0;
      Json.String "a \"quoted\" line\nwith\ttabs and \xc3\xa9";
      Json.List [ Json.Int 1; Json.Null; Json.List [] ];
      Json.Assoc [ ("b", Json.Int 2); ("a", Json.Assoc []) ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      Alcotest.(check string)
        "print . parse . print = print" s
        (Json.to_string (Json.parse_exn s)))
    values

let test_json_canonical_strings () =
  (* canonical strings reproduce byte for byte *)
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Json.to_string (Json.parse_exn s)))
    [
      {|{"type":"x","round":3,"ratio":1.5}|};
      {|[null,true,false,-7,"\\\""]|};
      {|{"nested":{"empty":[],"f":0.001}}|};
    ]

let test_json_rejects_malformed () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "01"; "1 2"; "nul"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* events                                                              *)
(* ------------------------------------------------------------------ *)

let all_event_variants =
  [
    Event.Drop { round = 1; color = 2; count = 3 };
    Event.Arrival { round = 1; color = 0; count = 9 };
    Event.Reconfigure
      { round = 4; mini_round = 1; resource = 2; from_color = -1; to_color = 5 };
    Event.Execute { round = 4; mini_round = 0; resource = 7; color = 5 };
    Event.Mini_round { round = 4; mini_round = 1 };
    Event.Epoch_open { round = 0; color = 3 };
    Event.Epoch_close { round = 8; color = 3; epochs_ended = 2 };
    Event.Counter_wrap { round = 5; color = 1; wraps = 4 };
    Event.Timestamp_update { round = 8; color = 3 };
    Event.Super_epoch { round = 9; index = 1; active_colors = 2; updates = 11 };
    Event.Credit { round = 5; color = 1; amount = 6 };
  ]

let test_event_roundtrip () =
  List.iter
    (fun e ->
      match Event.of_line (Event.to_line e) with
      | Ok e' when e' = e -> ()
      | Ok _ -> Alcotest.failf "event %s changed under round-trip" (Event.kind e)
      | Error msg -> Alcotest.failf "event %s: %s" (Event.kind e) msg)
    all_event_variants

(* ------------------------------------------------------------------ *)
(* sinks                                                               *)
(* ------------------------------------------------------------------ *)

let test_sink_null_is_disabled () =
  Alcotest.(check bool) "disabled" false (Sink.enabled Sink.null);
  Sink.emit Sink.null (List.hd all_event_variants);
  Alcotest.(check int) "no events" 0 (Sink.count Sink.null);
  Alcotest.(check (list reject)) "no buffer" [] (Sink.events Sink.null)

let test_sink_memory_preserves_order () =
  let sink = Sink.memory () in
  Alcotest.(check bool) "enabled" true (Sink.enabled sink);
  List.iter (Sink.emit sink) all_event_variants;
  Alcotest.(check int) "count" (List.length all_event_variants)
    (Sink.count sink);
  Alcotest.(check bool) "chronological" true
    (Sink.events sink = all_event_variants)

let test_sink_jsonl_lines_parse_back () =
  let path = Filename.temp_file "rrs_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          let sink = Sink.jsonl oc in
          List.iter (Sink.emit sink) all_event_variants);
      let lines = In_channel.with_open_text path In_channel.input_lines in
      let parsed = List.map (fun l -> Result.get_ok (Event.of_line l)) lines in
      Alcotest.(check bool) "parse back" true (parsed = all_event_variants))

(* ------------------------------------------------------------------ *)
(* engine parity: tracing must not change results                      *)
(* ------------------------------------------------------------------ *)

let same_result (a : Engine.result) (b : Engine.result) =
  a.cost = b.cost && a.executed = b.executed && a.dropped = b.dropped
  && a.reconfigurations = b.reconfigurations
  && a.rounds_simulated = b.rounds_simulated
  && a.drops_by_color = b.drops_by_color
  && a.executions_by_color = b.executions_by_color
  && a.final_cache = b.final_cache

let test_null_vs_memory_parity () =
  let instance = (Option.get (Families.find "router")).build ~seed:3 in
  let run sink =
    let instr = Lru_edf.make ~sink instance ~n:8 in
    Engine.run_policy (Engine.config ~n:8 ~sink ()) instance instr.policy
  in
  let r_null = run Sink.null in
  let r_mem = run (Sink.memory ()) in
  Alcotest.(check bool) "identical results" true (same_result r_null r_mem)

(* ------------------------------------------------------------------ *)
(* faithfulness: events reproduce the counters exactly                 *)
(* ------------------------------------------------------------------ *)

let run_traced instance ~n ~m =
  let sink = Sink.memory () in
  let instr = Lru_edf.make ~sink instance ~n in
  let se = Super_epochs.attach ~sink instr.eligibility ~m in
  let r = Engine.run_policy (Engine.config ~n ~sink ()) instance instr.policy in
  (r, instr.eligibility, se, Sink.events sink)

let test_events_reproduce_counters () =
  let instance = (Option.get (Families.find "router")).build ~seed:1 in
  let r, elig, se, events = run_traced instance ~n:8 ~m:1 in
  let count pred = List.length (List.filter pred events) in
  let sum f = List.fold_left (fun acc e -> acc + f e) 0 events in
  (* engine phases *)
  Alcotest.(check int) "Execute events = executed" r.executed
    (count (function Event.Execute _ -> true | _ -> false));
  Alcotest.(check int) "Drop counts sum = dropped" r.dropped
    (sum (function Event.Drop { count; _ } -> count | _ -> 0));
  Alcotest.(check int) "Reconfigure events = charged recolorings"
    r.reconfigurations
    (count (function Event.Reconfigure _ -> true | _ -> false));
  Alcotest.(check int) "Arrival counts sum = executed + dropped"
    (r.executed + r.dropped)
    (sum (function Event.Arrival { count; _ } -> count | _ -> 0));
  (* eligibility machinery *)
  Alcotest.(check int) "Counter_wrap events = wrap_events_total"
    (Eligibility.wrap_events_total elig)
    (count (function Event.Counter_wrap _ -> true | _ -> false));
  Alcotest.(check int) "Credit amounts sum = wraps * delta"
    (Eligibility.wrap_events_total elig * instance.delta)
    (sum (function Event.Credit { amount; _ } -> amount | _ -> 0));
  Array.iteri
    (fun color _ ->
      Alcotest.(check int)
        (Printf.sprintf "Epoch_close events of color %d = epochs_ended" color)
        (Eligibility.epochs_ended elig color)
        (count (function
          | Event.Epoch_close { color = c; _ } -> c = color
          | _ -> false)))
    instance.delay;
  (* super-epochs *)
  Alcotest.(check int) "Super_epoch events = completed"
    (Super_epochs.completed se)
    (count (function Event.Super_epoch _ -> true | _ -> false));
  Alcotest.(check (list int)) "active_colors payloads"
    (Super_epochs.active_colors_per_super_epoch se)
    (List.filter_map
       (function
         | Event.Super_epoch { active_colors; _ } -> Some active_colors
         | _ -> None)
       events);
  Alcotest.(check int) "Timestamp_update events = updates_total"
    (Super_epochs.updates_total se)
    (count (function Event.Timestamp_update _ -> true | _ -> false))

let test_event_rounds_are_monotone () =
  let instance = (Option.get (Families.find "uniform")).build ~seed:2 in
  let _, _, _, events = run_traced instance ~n:8 ~m:1 in
  Alcotest.(check bool) "some events" true (events <> []);
  let _ =
    List.fold_left
      (fun last e ->
        let r = Event.round e in
        if r < last then Alcotest.failf "round went back: %d after %d" r last;
        r)
      0 events
  in
  ()

(* ------------------------------------------------------------------ *)
(* metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_instruments () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "runs" in
  Metrics.inc c 2;
  Metrics.inc c 3;
  Alcotest.(check int) "counter" 5 (Metrics.value c);
  Alcotest.(check bool) "same name, same counter" true
    (Metrics.value (Metrics.counter reg "runs") = 5);
  (match Metrics.inc c (-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative increment accepted");
  (match Metrics.gauge reg "runs" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash accepted");
  let g = Metrics.gauge reg "load" in
  Alcotest.(check bool) "gauge starts nan" true
    (Float.is_nan (Metrics.gauge_value g));
  Metrics.set g 0.75;
  Alcotest.(check (float 0.0)) "gauge set" 0.75 (Metrics.gauge_value g);
  let h = Metrics.histogram reg "lat" ~max_value:64 in
  List.iter (Metrics.observe h) [ 1; 2; 2; 63 ];
  Alcotest.(check int) "histogram count" 4
    (Rrs_stats.Histogram.count (Metrics.histogram_stats h))

let test_metrics_timer_monotone () =
  let reg = Metrics.create () in
  let t = Metrics.timer reg "phase" in
  let span = Metrics.start t in
  let x = ref 0 in
  for i = 1 to 10_000 do
    x := !x + i
  done;
  let d = Metrics.stop span in
  Alcotest.(check bool) "duration >= 0" true (d >= 0.0);
  (match Metrics.stop span with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double stop accepted");
  let v = Metrics.time t (fun () -> 41 + 1) in
  Alcotest.(check int) "time returns the value" 42 v;
  Alcotest.(check int) "two spans recorded" 2 (Metrics.timer_count t);
  Alcotest.(check bool) "total >= each span" true
    (Metrics.timer_total t >= d);
  match Metrics.timers reg with
  | [ ("phase", 2, total) ] ->
      Alcotest.(check bool) "export total" true (total = Metrics.timer_total t)
  | _ -> Alcotest.fail "timers export shape"

let test_metrics_json_is_canonical () =
  let reg = Metrics.create () in
  Metrics.inc (Metrics.counter reg "b") 1;
  Metrics.inc (Metrics.counter reg "a") 2;
  let s = Json.to_string (Metrics.to_json reg) in
  Alcotest.(check string) "round-trips" s
    (Json.to_string (Json.parse_exn s));
  (* name-sorted: "a" printed before "b" *)
  let ia = String.index s 'a' and ib = String.index s 'b' in
  Alcotest.(check bool) "sorted sections" true (ia < ib)

(* ------------------------------------------------------------------ *)
(* domain safety: the race-regression tests                            *)
(* ------------------------------------------------------------------ *)

module Pool = Rrs_parallel.Pool

let hammer_domains = 4
let hammer_iters = 25_000

(* Shared-registry updates from several domains must lose nothing: on
   the old plain-[mutable] counters this test loses increments under
   true parallelism (read-modify-write tears), which is exactly the
   EXPERIMENTS.md contract violation this layer had. *)
let test_metrics_parallel_updates_lose_nothing () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "hits" in
  let t = Metrics.timer reg "spans" in
  let h = Metrics.histogram reg "obs" ~max_value:16 in
  let per_domain _ =
    for i = 1 to hammer_iters do
      Metrics.inc c 1;
      if i mod 100 = 0 then begin
        Metrics.observe h (i mod 17);
        ignore (Metrics.time t (fun () -> ()))
      end
    done
  in
  ignore (Pool.map ~domains:hammer_domains per_domain
            (List.init hammer_domains Fun.id));
  Alcotest.(check int) "no lost counter increments"
    (hammer_domains * hammer_iters) (Metrics.value c);
  Alcotest.(check int) "no lost spans"
    (hammer_domains * (hammer_iters / 100))
    (Metrics.timer_count t);
  Alcotest.(check int) "no lost observations"
    (hammer_domains * (hammer_iters / 100))
    (Rrs_stats.Histogram.count (Metrics.histogram_stats h))

let test_metrics_shards_merge_to_sequential_totals () =
  let items = List.init 40 (fun i -> i + 1) in
  (* per-domain shards, merged in input order *)
  let _, shards =
    Pool.map_reduce ~domains:hammer_domains
      ~init:(fun () -> Metrics.create ())
      ~f:(fun shard x ->
        Metrics.inc (Metrics.counter shard "total") x;
        Metrics.observe (Metrics.histogram shard "xs" ~max_value:64) x;
        ignore (Metrics.time (Metrics.timer shard "work") (fun () -> ())))
      items
  in
  let merged = Metrics.create () in
  List.iter (fun shard -> Metrics.merge_into ~into:merged shard) shards;
  let sequential = List.fold_left ( + ) 0 items in
  Alcotest.(check int) "merged counter = sequential sum" sequential
    (Metrics.value (Metrics.counter merged "total"));
  Alcotest.(check int) "merged histogram count" (List.length items)
    (Rrs_stats.Histogram.count
       (Metrics.histogram_stats (Metrics.histogram merged "xs" ~max_value:64)));
  Alcotest.(check int) "merged span count" (List.length items)
    (Metrics.timer_count (Metrics.timer merged "work"))

(* merge_into must preserve the full distributions, not just the
   counts: quantiles of the 4-domain sharded histogram and the Welford
   aggregate of the sharded timer equal a sequentially-built reference *)
let test_metrics_merge_preserves_distributions () =
  let items = List.init 200 (fun i -> i + 1) in
  let observe reg x =
    Metrics.observe (Metrics.histogram reg "lat" ~max_value:256) (x mod 97);
    (* timers only record real wall-clock spans, so the timer check
       below is on count/total additivity rather than exact values *)
    ignore (Metrics.time (Metrics.timer reg "work") (fun () -> ()))
  in
  let _, shards =
    Pool.map_reduce ~domains:hammer_domains
      ~init:(fun () -> Metrics.create ())
      ~f:(fun shard x -> observe shard x)
      items
  in
  let merged = Metrics.create () in
  List.iter (fun shard -> Metrics.merge_into ~into:merged shard) shards;
  let reference = Metrics.create () in
  List.iter (fun x -> observe reference x) items;
  let hist reg =
    Metrics.histogram_stats (Metrics.histogram reg "lat" ~max_value:256)
  in
  let mh = hist merged and rh = hist reference in
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "merged q%.2f = sequential" q)
        (Rrs_stats.Histogram.quantile rh q)
        (Rrs_stats.Histogram.quantile mh q))
    [ 0.0; 0.25; 0.5; 0.95; 0.99; 1.0 ];
  Alcotest.(check int) "merged histogram count"
    (Rrs_stats.Histogram.count rh)
    (Rrs_stats.Histogram.count mh);
  let merged_stats = Metrics.timer_stats (Metrics.timer merged "work") in
  Alcotest.(check int) "merged timer count" (List.length items)
    (Rrs_stats.Running.count merged_stats);
  let shard_total =
    List.fold_left
      (fun acc shard -> acc +. Metrics.timer_total (Metrics.timer shard "work"))
      0. shards
  in
  Alcotest.(check bool) "merged timer total = sum of shards" true
    (Float.abs (Metrics.timer_total (Metrics.timer merged "work") -. shard_total)
    < 1e-9);
  Alcotest.(check bool) "merged mean finite" true
    (Float.is_finite (Rrs_stats.Running.mean merged_stats))

(* the torn-read regression (satellite of the profiling PR): snapshot
   reads taken while another domain is mid-update must always be
   consistent states — counts never go backwards, means stay finite *)
let test_stats_snapshot_reads_mid_run () =
  let reg = Metrics.create () in
  let t = Metrics.timer reg "spans" in
  let h = Metrics.histogram reg "obs" ~max_value:32 in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop) do
          incr i;
          Metrics.observe h (!i mod 33);
          ignore (Metrics.time t (fun () -> ()))
        done)
  in
  let last_timer = ref 0 and last_hist = ref 0 in
  for _ = 1 to 2_000 do
    let ts = Metrics.timer_stats t in
    let n = Rrs_stats.Running.count ts in
    Alcotest.(check bool) "timer count monotone" true (n >= !last_timer);
    last_timer := n;
    if n > 0 then begin
      Alcotest.(check bool) "mean finite" true
        (Float.is_finite (Rrs_stats.Running.mean ts));
      Alcotest.(check bool) "variance nonnegative" true
        (Rrs_stats.Running.variance ts >= 0.)
    end;
    let hs = Metrics.histogram_stats h in
    let hn = Rrs_stats.Histogram.count hs in
    Alcotest.(check bool) "histogram count monotone" true (hn >= !last_hist);
    last_hist := hn;
    if hn > 0 then
      Alcotest.(check bool) "quantile within domain" true
        (Rrs_stats.Histogram.quantile hs 0.5 <= 32)
  done;
  Atomic.set stop true;
  Domain.join writer

let test_sink_jsonl_parallel_lines_not_torn () =
  let path = Filename.temp_file "rrs_obs" ".jsonl" in
  let per_domain = 500 in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          let sink = Sink.jsonl oc in
          ignore
            (Pool.map ~domains:hammer_domains
               (fun d ->
                 for i = 1 to per_domain do
                   Sink.emit sink
                     (Event.Drop { round = i; color = d; count = 1 })
                 done)
               (List.init hammer_domains Fun.id));
          Alcotest.(check int) "emitted count"
            (hammer_domains * per_domain) (Sink.count sink));
      let lines = In_channel.with_open_text path In_channel.input_lines in
      Alcotest.(check int) "one line per event"
        (hammer_domains * per_domain) (List.length lines);
      List.iter
        (fun l ->
          match Event.of_line l with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "torn/unparseable line %S: %s" l msg)
        lines)

let test_sink_memory_parallel_keeps_every_event () =
  let sink = Sink.memory () in
  let per_domain = 500 in
  ignore
    (Pool.map ~domains:hammer_domains
       (fun d ->
         for i = 1 to per_domain do
           Sink.emit sink (Event.Arrival { round = i; color = d; count = 1 })
         done)
       (List.init hammer_domains Fun.id));
  Alcotest.(check int) "count" (hammer_domains * per_domain) (Sink.count sink);
  Alcotest.(check int) "buffered" (hammer_domains * per_domain)
    (List.length (Sink.events sink))

(* ------------------------------------------------------------------ *)
(* run_summary artifacts                                               *)
(* ------------------------------------------------------------------ *)

let sample_summary =
  Run_summary.make ~id:"EXP-T" ~kind:"experiment" ~seed:7
    ~config:[ ("family", "router"); ("n", "8") ]
    ~reconfig_cost:352 ~drop_cost:407
    ~analysis:[ ("epochs", 19.0); ("ratio", 1.08125) ]
    ~timings:
      [
        { Run_summary.phase = "engine"; seconds = 0.01125; count = 1 };
        { Run_summary.phase = "validate"; seconds = 0.5; count = 2 };
      ]
    ()

let test_run_summary_roundtrip () =
  let line = Run_summary.to_line sample_summary in
  match Run_summary.of_line line with
  | Error msg -> Alcotest.fail msg
  | Ok s ->
      Alcotest.(check string) "byte-for-byte" line (Run_summary.to_line s);
      Alcotest.(check int) "total recomputed" 759 (Run_summary.total_cost s)

let test_run_summary_strip_timings () =
  let s =
    Run_summary.make ~id:"X" ~kind:"experiment"
      ~reconfig_cost:3 ~drop_cost:4
      ~analysis:[ ("engine_runs", 45.0); ("engine_seconds", 1.25) ]
      ~timings:[ { Run_summary.phase = "experiment"; seconds = 2.5; count = 1 } ]
      ()
  in
  let stripped = Run_summary.strip_timings s in
  Alcotest.(check int) "costs kept" 7 (Run_summary.total_cost stripped);
  Alcotest.(check (list (pair string (float 0.0)))) "wall time zeroed"
    [ ("engine_runs", 45.0); ("engine_seconds", 0.0) ]
    stripped.analysis;
  (match stripped.timings with
  | [ { phase = "experiment"; seconds = 0.0; count = 1 } ] -> ()
  | _ -> Alcotest.fail "timings shape");
  (* stripping is idempotent and canonical *)
  Alcotest.(check string) "idempotent"
    (Run_summary.to_line stripped)
    (Run_summary.to_line (Run_summary.strip_timings stripped))

let test_run_summary_load_skips_events () =
  let path = Filename.temp_file "rrs_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          let sink = Sink.jsonl oc in
          List.iter (Sink.emit sink) all_event_variants;
          Run_summary.write oc sample_summary;
          output_string oc "\n" (* blank lines are fine *));
      match Run_summary.load path with
      | Error msg -> Alcotest.fail msg
      | Ok [ s ] ->
          Alcotest.(check string) "the summary survives"
            (Run_summary.to_line sample_summary)
            (Run_summary.to_line s)
      | Ok l -> Alcotest.failf "expected 1 summary, got %d" (List.length l))

let test_run_summary_load_rejects_garbage () =
  let path = Filename.temp_file "rrs_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "{\"type\":\"run_summary\"\n");
      match Run_summary.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "malformed line accepted")

(* ------------------------------------------------------------------ *)
(* recoloring accounting under projection (the Metrics fix)            *)
(* ------------------------------------------------------------------ *)

let test_metrics_recolorings_match_engine_identity () =
  let instance = (Option.get (Families.find "router")).build ~seed:4 in
  let m, policy = Rrs_trace.Metrics.instrument (Lru_edf.policy instance ~n:8) in
  let r = Engine.run_policy (Engine.config ~n:8 ()) instance policy in
  match List.rev (Rrs_trace.Metrics.samples m) with
  | last :: _ ->
      Alcotest.(check int) "identity projection matches engine"
        r.reconfigurations last.cumulative_recolorings
  | [] -> Alcotest.fail "no samples"

let test_metrics_recolorings_match_engine_projected () =
  (* the Distribute reduction: subcolors collapse, so the engine charges
     post-projection — the sampler must agree from round 0 on *)
  let instance = (Option.get (Families.find "oversized")).build ~seed:1 in
  let mapping = Distribute.transform instance in
  let project = Distribute.project mapping in
  let m, policy =
    Rrs_trace.Metrics.instrument ~projection:project
      (Lru_edf.policy mapping.sub_instance ~n:8)
  in
  let cfg = Engine.config ~n:8 ~cost_projection:project () in
  let r = Engine.run_policy cfg mapping.sub_instance policy in
  match List.rev (Rrs_trace.Metrics.samples m) with
  | last :: _ ->
      Alcotest.(check int) "projected recolorings match engine"
        r.reconfigurations last.cumulative_recolorings
  | [] -> Alcotest.fail "no samples"

(* ------------------------------------------------------------------ *)
(* flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

module Flight_recorder = Rrs_obs.Flight_recorder
module Heartbeat = Rrs_obs.Heartbeat

let nth_event i = List.nth all_event_variants (i mod List.length all_event_variants)

let last_n n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

let test_recorder_retains_suffix () =
  let r = Flight_recorder.create ~capacity:8 () in
  let emitted = List.init 20 nth_event in
  List.iter (Flight_recorder.record r) emitted;
  Alcotest.(check int) "recorded total" 20 (Flight_recorder.events_recorded r);
  Alcotest.(check bool) "last 8, oldest first" true
    (Flight_recorder.recent r = last_n 8 emitted);
  (* under capacity: everything is retained *)
  let small = Flight_recorder.create ~capacity:64 () in
  List.iter (Flight_recorder.record small) emitted;
  Alcotest.(check bool) "under capacity keeps all" true
    (Flight_recorder.recent small = emitted)

(* Satellite property: for any capacity and any emission schedule
   spread across domains, the recorder's window is {e exactly} the
   last-N suffix of the full Sink.memory trace.  Phases alternate
   between the main domain and a freshly spawned one, with a join
   barrier between phases so the memory sink's order is the global
   sequence order; per-phase counts larger than the capacity exercise
   ring wraparound, multiple spawned phases exercise the multi-domain
   merge in [recent]. *)
let prop_recorder_suffix =
  QCheck.Test.make ~count:100
    ~name:"recorder window = last-N suffix of the full trace"
    QCheck.(
      pair (int_range 1 48) (list_of_size Gen.(int_range 0 8) (int_range 0 40)))
    (fun (cap, phases) ->
      let r = Flight_recorder.create ~capacity:cap () in
      let mem = Sink.memory () in
      let sink = Flight_recorder.attach r mem in
      let counter = ref 0 in
      List.iteri
        (fun pi count ->
          let emit () =
            for _ = 1 to count do
              Sink.emit sink (nth_event !counter);
              incr counter
            done
          in
          if pi mod 2 = 0 then emit ()
          else Domain.join (Domain.spawn emit))
        phases;
      let full = Sink.events mem in
      Flight_recorder.events_recorded r = List.length full
      && Flight_recorder.recent r = last_n cap full)

let test_recorder_dump_format () =
  let path = Filename.temp_file "rrs_dump" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let r = Flight_recorder.create ~capacity:4 ~snapshot_capacity:2 () in
      List.iter (Flight_recorder.record r) (List.init 10 nth_event);
      Flight_recorder.record_snapshot r (Json.Assoc [ ("beat", Json.Int 1) ]);
      Flight_recorder.record_snapshot r (Json.Assoc [ ("beat", Json.Int 2) ]);
      Flight_recorder.record_snapshot r (Json.Assoc [ ("beat", Json.Int 3) ]);
      Flight_recorder.dump ~name:"unit" ~reason:"because" r path;
      match In_channel.with_open_text path In_channel.input_lines with
      | header :: rest ->
          let json = Json.parse_exn header in
          let int_field key =
            Option.get (Json.member key json) |> Json.to_int |> Result.get_ok
          in
          Alcotest.(check string) "type" "flight_recorder"
            (Option.get (Json.member "type" json)
            |> Json.to_string_lit |> Result.get_ok);
          Alcotest.(check int) "events_recorded" 10 (int_field "events_recorded");
          Alcotest.(check int) "events_retained" 4 (int_field "events_retained");
          Alcotest.(check int) "snapshots" 2 (int_field "snapshots");
          let events, snaps =
            List.partition (fun l -> Result.is_ok (Event.of_line l)) rest
          in
          Alcotest.(check bool) "events are the window" true
            (List.map (fun l -> Result.get_ok (Event.of_line l)) events
            = Flight_recorder.recent r);
          (* snapshot ring capacity 2: beats 2 and 3 survive *)
          Alcotest.(check (list string)) "snapshot suffix"
            [ "{\"beat\":2}"; "{\"beat\":3}" ]
            snaps
      | [] -> Alcotest.fail "empty dump")

(* ------------------------------------------------------------------ *)
(* heartbeat                                                           *)
(* ------------------------------------------------------------------ *)

let observe hb ~round =
  Heartbeat.observe_round hb ~round ~delta:2 ~recolorings:1 ~executed:3
    ~dropped:1 ~latency_us:5

let test_heartbeat_round_cadence () =
  let hb = Heartbeat.create ~every_rounds:4 () in
  for round = 1 to 10 do
    observe hb ~round
  done;
  Alcotest.(check int) "beats at rounds 4 and 8" 2 (Heartbeat.beats hb);
  Alcotest.(check int) "rounds observed" 10 (Heartbeat.rounds_observed hb);
  Heartbeat.beat hb;
  Alcotest.(check int) "forced beat" 3 (Heartbeat.beats hb);
  let line = Option.get (Heartbeat.last_line hb) in
  let json = Json.parse_exn line in
  let int_field key =
    Option.get (Json.member key json) |> Json.to_int |> Result.get_ok
  in
  Alcotest.(check string) "line type" "heartbeat"
    (Option.get (Json.member "type" json)
    |> Json.to_string_lit |> Result.get_ok);
  Alcotest.(check int) "round reached" 10 (int_field "round");
  (* delta 2 x 1 recoloring x 10 rounds; drops cost 1 each *)
  Alcotest.(check int) "reconfig_cost" 20 (int_field "reconfig_cost");
  Alcotest.(check int) "drop_cost" 10 (int_field "drop_cost");
  Alcotest.(check int) "total_cost" 30 (int_field "total_cost");
  Alcotest.(check int) "executed" 30 (int_field "executed")

let test_heartbeat_time_cadence () =
  let now = ref 0.0 in
  let hb =
    Heartbeat.create ~every_rounds:max_int ~every_seconds:1.0
      ~clock:(fun () -> !now)
      ()
  in
  observe hb ~round:1;
  observe hb ~round:2;
  Alcotest.(check int) "no beat before the deadline" 0 (Heartbeat.beats hb);
  now := 1.5;
  observe hb ~round:3;
  Alcotest.(check int) "beat once time passed" 1 (Heartbeat.beats hb);
  observe hb ~round:4;
  Alcotest.(check int) "window restarts" 1 (Heartbeat.beats hb);
  now := 3.0;
  observe hb ~round:5;
  Alcotest.(check int) "second deadline" 2 (Heartbeat.beats hb)

let test_heartbeat_stream_and_status () =
  let path = Filename.temp_file "rrs_hb" ".jsonl" in
  let status = path ^ ".status" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      if Sys.file_exists status then Sys.remove status)
    (fun () ->
      let hb =
        Heartbeat.create ~every_rounds:2 ~path ~status_path:status ()
      in
      for round = 1 to 5 do
        observe hb ~round
      done;
      Heartbeat.finish hb;
      Heartbeat.finish hb (* idempotent *);
      let lines = In_channel.with_open_text path In_channel.input_lines in
      (* beats at rounds 2 and 4, plus the final beat for round 5 *)
      Alcotest.(check int) "stream lines" 3 (List.length lines);
      List.iter
        (fun l ->
          Alcotest.(check string) "parses as heartbeat" "heartbeat"
            (Option.get (Json.member "type" (Json.parse_exn l))
            |> Json.to_string_lit |> Result.get_ok))
        lines;
      let final = Json.parse_exn (List.nth lines 2) in
      Alcotest.(check bool) "final flag" true
        (Json.member "final" final = Some (Json.Bool true));
      let status_line =
        String.trim
          (In_channel.with_open_text status In_channel.input_all)
      in
      Alcotest.(check string) "status = last line" status_line
        (Option.get (Heartbeat.last_line hb)))

let test_heartbeat_feeds_ambient_recorder () =
  let r = Flight_recorder.create () in
  Flight_recorder.with_recorder r (fun () ->
      let hb = Heartbeat.create ~every_rounds:1 () in
      for round = 1 to 3 do
        observe hb ~round
      done);
  Alcotest.(check int) "each beat snapshotted" 3
    (List.length (Flight_recorder.snapshots r))

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_metrics_expose () =
  let reg = Metrics.create () in
  Metrics.inc (Metrics.counter reg "events.total") 7;
  Metrics.set (Metrics.gauge reg "alloc/minor") 12.5;
  let h = Metrics.histogram reg "latency.us" ~max_value:1000 in
  for v = 1 to 100 do
    Metrics.observe h v
  done;
  let text = Metrics.expose reg in
  (* names folded into the Prometheus grammar *)
  Alcotest.(check bool) "counter line" true
    (contains ~needle:"# TYPE events_total counter" text
    && contains ~needle:"events_total 7" text);
  Alcotest.(check bool) "gauge line" true
    (contains ~needle:"alloc_minor 12.5" text);
  Alcotest.(check bool) "summary quantile" true
    (contains ~needle:"latency_us{quantile=\"0.5\"}" text);
  Alcotest.(check bool) "summary count" true
    (contains ~needle:"latency_us_count 100" text);
  (* an unset gauge must not render a NaN sample *)
  ignore (Metrics.gauge reg "never.set");
  Alcotest.(check bool) "unset gauge omitted" false
    (contains ~needle:"never_set" (Metrics.expose reg));
  Alcotest.(check bool) "no NaN anywhere" false
    (contains ~needle:"nan" (String.lowercase_ascii (Metrics.expose reg)))

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "value round-trip" `Quick test_json_value_roundtrip;
          Alcotest.test_case "canonical strings" `Quick
            test_json_canonical_strings;
          Alcotest.test_case "rejects malformed" `Quick
            test_json_rejects_malformed;
        ] );
      ( "events",
        [
          Alcotest.test_case "all variants round-trip" `Quick
            test_event_roundtrip;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "null is disabled" `Quick test_sink_null_is_disabled;
          Alcotest.test_case "memory preserves order" `Quick
            test_sink_memory_preserves_order;
          Alcotest.test_case "jsonl parses back" `Quick
            test_sink_jsonl_lines_parse_back;
        ] );
      ( "engine tracing",
        [
          Alcotest.test_case "null vs memory parity" `Quick
            test_null_vs_memory_parity;
          Alcotest.test_case "events reproduce counters" `Quick
            test_events_reproduce_counters;
          Alcotest.test_case "rounds are monotone" `Quick
            test_event_rounds_are_monotone;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "instruments" `Quick test_metrics_instruments;
          Alcotest.test_case "timer monotone" `Quick test_metrics_timer_monotone;
          Alcotest.test_case "canonical json" `Quick
            test_metrics_json_is_canonical;
          Alcotest.test_case "recolorings: identity" `Quick
            test_metrics_recolorings_match_engine_identity;
          Alcotest.test_case "recolorings: projected" `Quick
            test_metrics_recolorings_match_engine_projected;
        ] );
      ( "domain safety",
        [
          Alcotest.test_case "parallel updates lose nothing" `Quick
            test_metrics_parallel_updates_lose_nothing;
          Alcotest.test_case "merge preserves distributions" `Quick
            test_metrics_merge_preserves_distributions;
          Alcotest.test_case "snapshot reads mid-run" `Quick
            test_stats_snapshot_reads_mid_run;
          Alcotest.test_case "shards merge to sequential totals" `Quick
            test_metrics_shards_merge_to_sequential_totals;
          Alcotest.test_case "parallel jsonl lines not torn" `Quick
            test_sink_jsonl_parallel_lines_not_torn;
          Alcotest.test_case "parallel memory sink keeps all" `Quick
            test_sink_memory_parallel_keeps_every_event;
        ] );
      ( "flight recorder",
        [
          Alcotest.test_case "retains the last-N window" `Quick
            test_recorder_retains_suffix;
          QCheck_alcotest.to_alcotest prop_recorder_suffix;
          Alcotest.test_case "dump format" `Quick test_recorder_dump_format;
        ] );
      ( "heartbeat",
        [
          Alcotest.test_case "round cadence" `Quick test_heartbeat_round_cadence;
          Alcotest.test_case "time cadence (injected clock)" `Quick
            test_heartbeat_time_cadence;
          Alcotest.test_case "stream, status and final beat" `Quick
            test_heartbeat_stream_and_status;
          Alcotest.test_case "beats feed the ambient recorder" `Quick
            test_heartbeat_feeds_ambient_recorder;
          Alcotest.test_case "prometheus exposition" `Quick test_metrics_expose;
        ] );
      ( "run_summary",
        [
          Alcotest.test_case "byte round-trip" `Quick test_run_summary_roundtrip;
          Alcotest.test_case "strip_timings" `Quick
            test_run_summary_strip_timings;
          Alcotest.test_case "load skips events" `Quick
            test_run_summary_load_skips_events;
          Alcotest.test_case "load rejects garbage" `Quick
            test_run_summary_load_rejects_garbage;
        ] );
    ]
