(* Tests for the pending-job bookkeeping, including a model-based
   property against a naive reference. *)

open Rrs_core

let test_basics () =
  let p = Pending.create ~num_colors:3 in
  Alcotest.(check int) "num_colors" 3 (Pending.num_colors p);
  Alcotest.(check bool) "idle" true (Pending.is_idle p 0);
  Pending.add p 0 ~deadline:5 ~count:2;
  Pending.add p 0 ~deadline:7 ~count:1;
  Pending.add p 2 ~deadline:6 ~count:4;
  Alcotest.(check int) "total 0" 3 (Pending.total p 0);
  Alcotest.(check int) "grand" 7 (Pending.grand_total p);
  Alcotest.(check int) "nonidle" 2 (Pending.nonidle_count p);
  Alcotest.(check (option int)) "earliest" (Some 5) (Pending.earliest_deadline p 0);
  Alcotest.(check (option int)) "idle earliest" None (Pending.earliest_deadline p 1)

let test_execute_order () =
  let p = Pending.create ~num_colors:1 in
  Pending.add p 0 ~deadline:5 ~count:1;
  Pending.add p 0 ~deadline:9 ~count:1;
  Alcotest.(check (option int)) "earliest first" (Some 5) (Pending.execute_one p 0);
  Alcotest.(check (option int)) "then later" (Some 9) (Pending.execute_one p 0);
  Alcotest.(check (option int)) "then empty" None (Pending.execute_one p 0)

(* the zero-alloc accessors agree with their option-boxed counterparts
   through arbitrary execute/expire traffic *)
let test_flat_accessors_agree () =
  let p = Pending.create ~num_colors:2 in
  let agree msg =
    List.iter
      (fun c ->
        let expected =
          match Pending.earliest_deadline p c with Some d -> d | None -> -1
        in
        Alcotest.(check int) (Printf.sprintf "%s: color %d" msg c) expected
          (Pending.front_deadline p c))
      [ 0; 1 ]
  in
  agree "empty";
  Pending.add p 0 ~deadline:5 ~count:2;
  Pending.add p 0 ~deadline:7 ~count:1;
  Pending.add p 1 ~deadline:6 ~count:1;
  agree "loaded";
  Alcotest.(check bool) "execute consumes" true (Pending.execute p 0);
  agree "after execute";
  Alcotest.(check bool) "execute drains bucket" true (Pending.execute p 0);
  agree "front bucket gone";
  Alcotest.(check int) "front moved to 7" 7 (Pending.front_deadline p 0);
  ignore (Pending.expire p ~now:7);
  agree "after expire";
  Alcotest.(check int) "idle is -1" (-1) (Pending.front_deadline p 0);
  Alcotest.(check bool) "execute on idle is false" false (Pending.execute p 0)

let test_merge_same_deadline () =
  let p = Pending.create ~num_colors:1 in
  Pending.add p 0 ~deadline:5 ~count:2;
  Pending.add p 0 ~deadline:5 ~count:3;
  Alcotest.(check int) "merged total" 5 (Pending.total p 0);
  Alcotest.(check (list (list (pair int int))))
    "single bucket"
    [ [ (5, 5) ] ]
    (Array.to_list (Pending.snapshot p))

let test_add_validation () =
  let p = Pending.create ~num_colors:1 in
  Pending.add p 0 ~deadline:5 ~count:1;
  Alcotest.check_raises "deadline regression"
    (Invalid_argument "Pending.add: deadline out of order") (fun () ->
      Pending.add p 0 ~deadline:4 ~count:1);
  Alcotest.check_raises "negative count"
    (Invalid_argument "Pending.add: negative count") (fun () ->
      Pending.add p 0 ~deadline:9 ~count:(-1));
  Pending.add p 0 ~deadline:9 ~count:0;
  Alcotest.(check int) "zero count is noop" 1 (Pending.total p 0)

let test_expire () =
  let p = Pending.create ~num_colors:2 in
  Pending.add p 0 ~deadline:3 ~count:2;
  Pending.add p 0 ~deadline:5 ~count:1;
  Pending.add p 1 ~deadline:3 ~count:4;
  Alcotest.(check (list (pair int int)))
    "expire at 3"
    [ (0, 2); (1, 4) ]
    (Pending.expire p ~now:3);
  Alcotest.(check int) "remaining" 1 (Pending.grand_total p);
  Alcotest.(check (list (pair int int))) "nothing due" [] (Pending.expire p ~now:4);
  Alcotest.(check (list (pair int int)))
    "expire rest"
    [ (0, 1) ]
    (Pending.expire p ~now:5)

let test_expire_after_execute () =
  (* the due-heap entry becomes stale when a bucket is fully executed *)
  let p = Pending.create ~num_colors:1 in
  Pending.add p 0 ~deadline:3 ~count:1;
  ignore (Pending.execute_one p 0);
  Alcotest.(check (list (pair int int))) "no phantom drop" [] (Pending.expire p ~now:3)

let test_expire_keeps_future_entries () =
  (* the peek-based drain must stop at the first not-yet-due heap entry
     and leave it in place: the same entry still triggers the drop when
     its deadline arrives (regression for the pop-and-re-push drain) *)
  let p = Pending.create ~num_colors:2 in
  Pending.add p 0 ~deadline:2 ~count:1;
  Pending.add p 1 ~deadline:9 ~count:2;
  Alcotest.(check (list (pair int int)))
    "only due" [ (0, 1) ] (Pending.expire p ~now:2);
  Alcotest.(check (list (pair int int)))
    "nothing between" [] (Pending.expire p ~now:8);
  Alcotest.(check (list (pair int int)))
    "future entry still fires" [ (1, 2) ] (Pending.expire p ~now:9)

let test_stale_entry_then_live_bucket () =
  (* a stale heap entry (its bucket was fully executed) must neither
     produce a phantom drop nor hide the color's live later bucket *)
  let p = Pending.create ~num_colors:1 in
  Pending.add p 0 ~deadline:3 ~count:1;
  Pending.add p 0 ~deadline:8 ~count:1;
  ignore (Pending.execute_one p 0);
  Alcotest.(check (list (pair int int)))
    "stale entry, no drop" [] (Pending.expire p ~now:3);
  Alcotest.(check (list (pair int int)))
    "live bucket drops at its own deadline" [ (0, 1) ] (Pending.expire p ~now:8)

let test_front_change_notifications () =
  let p = Pending.create ~num_colors:2 in
  let log = ref [] in
  let take_log () =
    let l = List.rev !log in
    log := [];
    l
  in
  Pending.on_front_change p (fun c -> log := c :: !log);
  Pending.add p 0 ~deadline:5 ~count:2;
  Alcotest.(check (list int)) "idle->nonidle fires" [ 0 ] (take_log ());
  Pending.add p 0 ~deadline:7 ~count:1;
  Alcotest.(check (list int)) "append behind front is silent" [] (take_log ());
  ignore (Pending.execute_one p 0);
  Alcotest.(check (list int)) "front bucket survives: silent" [] (take_log ());
  ignore (Pending.execute_one p 0);
  Alcotest.(check (list int)) "front bucket exhausted: fires" [ 0 ] (take_log ());
  Pending.add p 1 ~deadline:6 ~count:1;
  ignore (take_log ());
  ignore (Pending.expire p ~now:7);
  Alcotest.(check (list int))
    "expiry fires per affected color" [ 0; 1 ]
    (List.sort compare (take_log ()));
  Pending.add p 0 ~deadline:9 ~count:3;
  ignore (take_log ());
  Alcotest.(check int) "drop_all count" 3 (Pending.drop_all p 0);
  Alcotest.(check (list int)) "drop_all fires" [ 0 ] (take_log ());
  Alcotest.(check int) "drop_all on idle is silent" 0 (Pending.drop_all p 1);
  Alcotest.(check (list int)) "no event" [] (take_log ())

let test_drop_all () =
  let p = Pending.create ~num_colors:2 in
  Pending.add p 0 ~deadline:3 ~count:2;
  Pending.add p 0 ~deadline:6 ~count:3;
  Alcotest.(check int) "drop_all" 5 (Pending.drop_all p 0);
  Alcotest.(check int) "drop_all idle" 0 (Pending.drop_all p 1);
  Alcotest.(check int) "empty after" 0 (Pending.grand_total p);
  (* after drop_all, earlier deadlines may be enqueued again *)
  Pending.add p 0 ~deadline:2 ~count:1;
  Alcotest.(check int) "reusable" 1 (Pending.total p 0)

let test_iter_nonidle () =
  let p = Pending.create ~num_colors:4 in
  Pending.add p 2 ~deadline:9 ~count:1;
  Pending.add p 0 ~deadline:9 ~count:2;
  let seen = ref [] in
  Pending.iter_nonidle p (fun c n -> seen := (c, n) :: !seen);
  Alcotest.(check (list (pair int int))) "ascending colors" [ (0, 2); (2, 1) ]
    (List.rev !seen)

(* Model-based property: interleave adds / executes / expires and compare
   against a naive per-color list-of-jobs model.  Deadlines within a color
   are generated nondecreasing by construction (monotone clock). *)
let prop_model =
  let open QCheck in
  let op =
    oneof
      [
        map (fun (c, n) -> `Add (c, n)) (pair (int_bound 2) (int_range 1 4));
        map (fun c -> `Execute c) (int_bound 2);
        always `Tick;
        map (fun c -> `Drop_all c) (int_bound 2);
      ]
  in
  Test.make ~count:300 ~name:"pending matches a naive model" (list op)
    (fun ops ->
      let p = Pending.create ~num_colors:3 in
      let model = Array.make 3 [] in
      (* model.(c) is a deadline-ascending list of unit jobs *)
      let now = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Add (c, n) ->
              let deadline = !now + 3 in
              Pending.add p c ~deadline ~count:n;
              model.(c) <- model.(c) @ List.init n (fun _ -> deadline)
          | `Execute c -> (
              let expected =
                match model.(c) with
                | [] -> None
                | d :: rest ->
                    model.(c) <- rest;
                    Some d
              in
              match (Pending.execute_one p c, expected) with
              | Some d, Some d' when d = d' -> ()
              | None, None -> ()
              | _ -> ok := false)
          | `Tick ->
              incr now;
              let dropped = Pending.expire p ~now:!now in
              let expected = ref [] in
              Array.iteri
                (fun c jobs ->
                  let gone = List.filter (fun d -> d <= !now) jobs in
                  model.(c) <- List.filter (fun d -> d > !now) jobs;
                  if gone <> [] then expected := (c, List.length gone) :: !expected)
                model;
              if dropped <> List.sort compare !expected then ok := false
          | `Drop_all c ->
              let n = Pending.drop_all p c in
              if n <> List.length model.(c) then ok := false;
              model.(c) <- [])
        ops;
      List.iter
        (fun c ->
          if Pending.total p c <> List.length model.(c) then ok := false)
        [ 0; 1; 2 ];
      !ok)

let () =
  Alcotest.run "pending"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "execute order" `Quick test_execute_order;
          Alcotest.test_case "bucket merge" `Quick test_merge_same_deadline;
          Alcotest.test_case "validation" `Quick test_add_validation;
          Alcotest.test_case "expire" `Quick test_expire;
          Alcotest.test_case "stale heap entries" `Quick
            test_expire_after_execute;
          Alcotest.test_case "drop_all" `Quick test_drop_all;
          Alcotest.test_case "iter_nonidle" `Quick test_iter_nonidle;
          Alcotest.test_case "expire keeps future entries" `Quick
            test_expire_keeps_future_entries;
          Alcotest.test_case "stale entry then live bucket" `Quick
            test_stale_entry_then_live_bucket;
          Alcotest.test_case "front-change notifications" `Quick
            test_front_change_notifications;
          Alcotest.test_case "flat accessors agree" `Quick
            test_flat_accessors_agree;
        ] );
      ("model", [ QCheck_alcotest.to_alcotest prop_model ]);
    ]
