(* The profiling observatory: structural validity of the Chrome trace
   export, multi-domain track separation, and — the load-bearing
   property — non-perturbation: an instrumented run makes bit-identical
   decisions with and without an attached profiler (reusing the
   differential harness's Engine.result structural equality). *)

open Rrs_core
module Prof = Rrs_prof
module Json = Rrs_obs.Json
module Families = Rrs_workload.Families

let arr round color count = { Types.round; color; count }

let small_instance () =
  Instance.create ~delta:2
    ~delay:[| 4; 4; 8; 8 |]
    ~arrivals:[ arr 0 0 6; arr 0 2 4; arr 4 1 6; arr 8 3 8; arr 12 0 4 ]
    ()

let run_instrumented ?(mode = Ranking.Incremental) instance =
  Engine.run_policy
    (Engine.config ~n:8 ~record_schedule:true ())
    instance
    (Lru_edf.make ~mode instance ~n:8).policy

(* ------------------------------------------------------------------ *)
(* Chrome trace structure                                              *)
(* ------------------------------------------------------------------ *)

type ev = {
  ph : string;
  name : string;
  tid : int;
  ts : float; (* nan for metadata events, which carry no ts *)
}

let parse_events trace =
  let doc = Json.parse_exn trace in
  let events =
    match Json.member "traceEvents" doc with
    | Some l -> Result.get_ok (Json.to_list l)
    | None -> Alcotest.fail "no traceEvents field"
  in
  List.map
    (fun e ->
      let str f =
        match Json.member f e with
        | Some s -> Result.get_ok (Json.to_string_lit s)
        | None -> Alcotest.failf "event without %S: %s" f (Json.to_string e)
      in
      let num f =
        match Json.member f e with
        | Some n -> Result.get_ok (Json.to_float n)
        | None -> Float.nan
      in
      {
        ph = str "ph";
        name = str "name";
        tid = int_of_float (num "tid");
        ts = num "ts";
      })
    events

(* Replay one track's B/E events: stack discipline (every E names the
   innermost open B), monotone timestamps, empty stack at the end. *)
let check_track tid evs =
  let stack = ref [] in
  let last_ts = ref neg_infinity in
  List.iter
    (fun e ->
      if e.ph <> "M" then begin
        Alcotest.(check bool)
          (Printf.sprintf "track %d: monotone ts" tid)
          true
          (e.ts >= !last_ts);
        last_ts := e.ts
      end;
      match e.ph with
      | "B" -> stack := e.name :: !stack
      | "E" -> (
          match !stack with
          | top :: rest ->
              Alcotest.(check string)
                (Printf.sprintf "track %d: E closes innermost B" tid)
                top e.name;
              stack := rest
          | [] -> Alcotest.failf "track %d: E %s with empty stack" tid e.name)
      | "i" | "M" -> ()
      | ph -> Alcotest.failf "track %d: unexpected ph %S" tid ph)
    evs;
  Alcotest.(check (list string))
    (Printf.sprintf "track %d: balanced" tid)
    [] !stack

let tracks_of evs =
  let tids = List.sort_uniq compare (List.map (fun e -> e.tid) evs) in
  List.map (fun tid -> (tid, List.filter (fun e -> e.tid = tid) evs)) tids

let test_trace_structure () =
  let prof = Prof.create () in
  let f = Option.get (Families.find "uniform") in
  (* both ranking arms: the incremental hot path emits ranking.query,
     while policy.take lives only on the Rebuild/oracle list pipeline *)
  ignore
    (Prof.with_profiler prof (fun () ->
         ignore (run_instrumented (f.build ~seed:1));
         run_instrumented ~mode:Ranking.Rebuild (f.build ~seed:1)));
  Alcotest.(check bool) "events recorded" true (Prof.events prof > 0);
  let evs = parse_events (Prof.to_chrome_string prof) in
  List.iter (fun (tid, evs) -> check_track tid evs) (tracks_of evs);
  (* the engine phases and the ranking hot path must all be present *)
  let names = List.map (fun e -> e.name) evs in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " span present") true
        (List.mem expected names))
    [
      "engine.run";
      "engine.round";
      "engine.drop";
      "engine.arrival";
      "engine.reconfigure";
      "engine.execute";
      "eligibility.begin_round";
      "ranking.index.build";
      "ranking.query";
      "policy.take";
    ]

let test_end_events_carry_alloc_args () =
  let prof = Prof.create () in
  ignore (Prof.with_profiler prof (fun () -> run_instrumented (small_instance ())));
  let doc = Json.parse_exn (Prof.to_chrome_string prof) in
  let events =
    Result.get_ok (Json.to_list (Option.get (Json.member "traceEvents" doc)))
  in
  let checked = ref 0 in
  List.iter
    (fun e ->
      match Json.member "ph" e with
      | Some (Json.String "E") ->
          let args = Option.get (Json.member "args" e) in
          List.iter
            (fun f ->
              match Json.member f args with
              | Some v ->
                  Alcotest.(check bool) (f ^ " >= 0") true
                    (Result.get_ok (Json.to_float v) >= 0.)
              | None -> Alcotest.failf "E event without args.%s" f)
            [ "minor_words"; "promoted_words"; "major_words" ];
          incr checked
      | _ -> ())
    events;
  Alcotest.(check bool) "some E events checked" true (!checked > 0)

let test_unbalanced_and_inactive_sites () =
  (* leave with nothing open is ignored; a mislabelled leave still
     closes the innermost span under its real name *)
  Prof.leave "no-profiler-attached";
  let prof = Prof.create () in
  Prof.with_profiler prof (fun () ->
      Alcotest.(check bool) "active inside" true (Prof.active ());
      Prof.leave "nothing-open";
      Prof.enter "outer";
      Prof.enter "inner";
      Prof.leave "mislabelled";
      Prof.instant "marker";
      Prof.leave "outer");
  Alcotest.(check bool) "inactive outside" false (Prof.active ());
  let evs =
    List.filter (fun e -> e.ph <> "M")
      (parse_events (Prof.to_chrome_string prof))
  in
  Alcotest.(check (list string))
    "event sequence" [ "outer"; "inner"; "inner"; "marker"; "outer" ]
    (List.map (fun e -> e.name) evs);
  Alcotest.(check (list string))
    "phases" [ "B"; "B"; "E"; "i"; "E" ]
    (List.map (fun e -> e.ph) evs)

let test_exception_closes_open_spans () =
  let prof = Prof.create () in
  (try
     Prof.with_profiler prof (fun () ->
         Prof.enter "doomed";
         Prof.enter "deeper";
         failwith "boom")
   with Failure _ -> ());
  let evs = parse_events (Prof.to_chrome_string prof) in
  List.iter (fun (tid, evs) -> check_track tid evs) (tracks_of evs)

(* regression: the ranking hot-path queries guard their enter/leave pair
   by hand (no closure); a query whose [exclude] callback raises must
   close "ranking.query" on the exception path itself, not lean on the
   export-time cleanup of leaked spans *)
let test_raising_query_leaves_stack_balanced () =
  let prof = Prof.create () in
  let instance = small_instance () in
  Prof.with_profiler prof (fun () ->
      let elig = Eligibility.create instance in
      let pending = Pending.create ~num_colors:instance.num_colors in
      let view =
        {
          Policy.round = 0;
          mini_round = 0;
          arrivals = [ (0, 2); (1, 1) ];
          dropped = [];
          cache = [||];
          pending;
        }
      in
      Eligibility.begin_round elig ~view ~in_cache:(fun _ -> false);
      let index = Ranking.Index.lazily elig ~delay:instance.delay in
      let idx = index pending in
      let out = Array.make 4 0 in
      (try
         ignore
           (Ranking.Index.ranked_prefix_excluding_into idx ~k:2 ~excluded:0
              ~exclude:(fun _ -> failwith "boom")
              ~out)
       with Failure _ -> ());
      Prof.span "probe" (fun () -> ()));
  let evs = parse_events (Prof.to_chrome_string prof) in
  List.iter (fun (tid, evs) -> check_track tid evs) (tracks_of evs);
  (* chronological event order: the query's E precedes the probe's B,
     i.e. the span was closed by the raising query, not at export *)
  let rec index_of p i = function
    | [] -> Alcotest.fail "expected event missing"
    | e :: rest -> if p e then i else index_of p (i + 1) rest
  in
  let query_end =
    index_of (fun e -> e.ph = "E" && e.name = "ranking.query") 0 evs
  in
  let probe_begin =
    index_of (fun e -> e.ph = "B" && e.name = "probe") 0 evs
  in
  Alcotest.(check bool) "query closed before probe opened" true
    (query_end < probe_begin)

(* ------------------------------------------------------------------ *)
(* Multi-domain tracks                                                 *)
(* ------------------------------------------------------------------ *)

(* spawned domains inherit the attachment and record onto their own
   tracks — deterministically: each Domain.spawn below records, so the
   trace must carry exactly parent + 3 child tracks *)
let test_spawned_domains_get_own_tracks () =
  let prof = Prof.create () in
  Prof.with_profiler prof (fun () ->
      Prof.span "parent" (fun () ->
          let children =
            List.init 3 (fun i ->
                Domain.spawn (fun () ->
                    Prof.span (Printf.sprintf "child-%d" i) (fun () -> ())))
          in
          List.iter Domain.join children));
  let evs = parse_events (Prof.to_chrome_string prof) in
  let tracks = tracks_of evs in
  List.iter (fun (tid, evs) -> check_track tid evs) tracks;
  Alcotest.(check int) "parent + 3 child tracks" 4 (List.length tracks);
  (* every track announces itself with thread_name metadata *)
  List.iter
    (fun (tid, evs) ->
      Alcotest.(check bool)
        (Printf.sprintf "track %d has thread_name" tid)
        true
        (List.exists (fun e -> e.ph = "M" && e.name = "thread_name") evs))
    tracks;
  (* each child span lives on a track of its own, not the parent's *)
  let track_of name =
    match List.find_opt (fun e -> e.name = name && e.ph = "B") evs with
    | Some e -> e.tid
    | None -> Alcotest.failf "span %s not recorded" name
  in
  let parent_tid = track_of "parent" in
  let child_tids = List.init 3 (fun i -> track_of (Printf.sprintf "child-%d" i)) in
  List.iter
    (fun tid ->
      Alcotest.(check bool) "child off the parent track" true (tid <> parent_tid))
    child_tids;
  Alcotest.(check int) "children on distinct tracks" 3
    (List.length (List.sort_uniq compare child_tids))

(* Pool workers run under the same inheritance; with trivial items the
   caller may steal everything, so assert completeness (every span
   recorded somewhere, all tracks well-formed), not the track count *)
let test_pool_workers_record_all_spans () =
  let prof = Prof.create () in
  let results =
    Prof.with_profiler prof (fun () ->
        Rrs_parallel.Pool.map ~domains:4
          (fun i ->
            Prof.span (Printf.sprintf "work-%d" i) (fun () ->
                Unix.sleepf 0.002;
                i * i))
          [ 0; 1; 2; 3; 4; 5; 6; 7 ])
  in
  Alcotest.(check (list int)) "pool result" [ 0; 1; 4; 9; 16; 25; 36; 49 ]
    results;
  let evs = parse_events (Prof.to_chrome_string prof) in
  List.iter (fun (tid, evs) -> check_track tid evs) (tracks_of evs);
  let names = List.map (fun e -> e.name) evs in
  for i = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "work-%d recorded" i)
      true
      (List.mem (Printf.sprintf "work-%d" i) names)
  done

(* ------------------------------------------------------------------ *)
(* Non-perturbation                                                    *)
(* ------------------------------------------------------------------ *)

(* The differential-oracle harness, third axis: for every policy of the
   ΔLRU/EDF family, profiled and unprofiled runs must agree on the full
   Engine.result — cost, counters, per-color arrays, final cache and
   the complete recorded schedule. *)
let test_profiler_does_not_perturb_decisions () =
  let policies :
      (string * (Ranking.mode -> Instance.t -> n:int -> Policy.t)) list =
    [
      ( "dlru",
        fun mode instance ~n -> (Delta_lru.make ~mode instance ~n).policy );
      ( "edf",
        fun mode instance ~n -> (Edf_policy.make ~mode instance ~n).policy );
      ( "dlru-edf",
        fun mode instance ~n -> (Lru_edf.make ~mode instance ~n).policy );
    ]
  in
  let instances =
    small_instance ()
    :: List.map
         (fun id -> (Option.get (Families.find id)).Families.build ~seed:1)
         [ "uniform"; "bursty" ]
  in
  List.iter
    (fun instance ->
      List.iter
        (fun (pname, make) ->
          List.iter
            (fun mode ->
              let run () =
                Engine.run_policy
                  (Engine.config ~n:8 ~record_schedule:true ())
                  instance (make mode instance ~n:8)
              in
              let plain = run () in
              let profiled =
                Prof.with_profiler (Prof.create ()) (fun () -> run ())
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/%s identical under profiling" pname
                   instance.Instance.name (Ranking.mode_to_string mode))
                true (plain = profiled))
            [ Ranking.Incremental; Ranking.Rebuild ])
        policies)
    instances

let () =
  Alcotest.run "prof"
    [
      ( "trace",
        [
          Alcotest.test_case "chrome structure" `Quick test_trace_structure;
          Alcotest.test_case "alloc args on E" `Quick
            test_end_events_carry_alloc_args;
          Alcotest.test_case "unbalanced sites" `Quick
            test_unbalanced_and_inactive_sites;
          Alcotest.test_case "exception closes spans" `Quick
            test_exception_closes_open_spans;
          Alcotest.test_case "raising query stays balanced" `Quick
            test_raising_query_leaves_stack_balanced;
        ] );
      ( "domains",
        [
          Alcotest.test_case "spawned domain tracks" `Quick
            test_spawned_domains_get_own_tracks;
          Alcotest.test_case "pool spans complete" `Quick
            test_pool_workers_record_all_spans;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "non-perturbation" `Quick
            test_profiler_does_not_perturb_decisions;
        ] );
    ]
