(* Tests for the domain pool, including running real engine sweeps in
   parallel and checking bit-identical results against sequential runs. *)

open Rrs_core
module Pool = Rrs_parallel.Pool
module Families = Rrs_workload.Families

let test_map_matches_sequential () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "order preserved" (List.map f xs)
    (Pool.map ~domains:4 f xs);
  Alcotest.(check (list int)) "single domain" (List.map f xs)
    (Pool.map ~domains:1 f xs);
  Alcotest.(check (list int)) "empty" [] (Pool.map ~domains:4 f []);
  Alcotest.(check (list int)) "short list" [ 1 ] (Pool.map ~domains:8 f [ 0 ])

let test_exceptions_propagate () =
  match
    Pool.map ~domains:3
      (fun x -> if x = 5 then failwith "boom" else x)
      (List.init 10 Fun.id)
  with
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
  | _ -> Alcotest.fail "exception swallowed"

let test_domains_validation () =
  match Pool.map ~domains:0 Fun.id [ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains = 0 accepted"

(* The worker's backtrace must survive the cross-domain re-raise: a
   plain [raise] in the caller would show only pool.ml frames, not the
   task's raise site in this file. *)
let boom_deep x =
  if x = 5 then failwith "deep boom" else x [@@inline never]

let test_exception_backtrace_survives () =
  let was = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect
    ~finally:(fun () -> Printexc.record_backtrace was)
    (fun () ->
      match Pool.map ~domains:3 boom_deep (List.init 10 Fun.id) with
      | _ -> Alcotest.fail "exception swallowed"
      | exception Failure _ ->
          let bt = Printexc.get_backtrace () in
          if not (String.length bt > 0) then Alcotest.fail "empty backtrace";
          (* the raise site is in this file, not just in pool.ml *)
          let mentions_raise_site =
            let rec find i =
              i + 16 <= String.length bt
              && (String.sub bt i 16 = "test_parallel.ml" || find (i + 1))
            in
            find 0
          in
          Alcotest.(check bool) "backtrace reaches the task" true
            mentions_raise_site)

let test_map_reduce_results_and_shards () =
  let items = List.init 37 (fun i -> i + 1) in
  let run () =
    Pool.map_reduce ~domains:4
      ~init:(fun () -> ref 0)
      ~f:(fun acc x ->
        acc := !acc + x;
        x * 2)
      items
  in
  let results, shards = run () in
  Alcotest.(check (list int)) "results in input order"
    (List.map (fun x -> x * 2) items)
    results;
  let total = List.fold_left (fun s acc -> s + !acc) 0 shards in
  Alcotest.(check int) "shard totals = sequential sum"
    (List.fold_left ( + ) 0 items)
    total;
  (* static block partition: the item -> shard assignment is a pure
     function of (length, domains), so per-shard totals reproduce *)
  let _, shards' = run () in
  Alcotest.(check (list int)) "deterministic shard assignment"
    (List.map ( ! ) shards)
    (List.map ( ! ) shards');
  (* single worker degrades to a sequential fold with one shard *)
  let seq_results, seq_shards =
    Pool.map_reduce ~domains:1
      ~init:(fun () -> ref 0)
      ~f:(fun acc x ->
        acc := !acc + x;
        x * 2)
      items
  in
  Alcotest.(check (list int)) "sequential results" results seq_results;
  (match seq_shards with
  | [ acc ] ->
      Alcotest.(check int) "one shard, full sum"
        (List.fold_left ( + ) 0 items)
        !acc
  | _ -> Alcotest.fail "expected exactly one shard");
  Alcotest.(check bool) "empty input" true
    (Pool.map_reduce ~domains:4 ~init:(fun () -> ()) ~f:(fun () x -> x) []
     = ([], []))

let test_map_reduce_propagates_exceptions () =
  match
    Pool.map_reduce ~domains:3
      ~init:(fun () -> ())
      ~f:(fun () x -> if x = 7 then failwith "mr boom" else x)
      (List.init 12 Fun.id)
  with
  | exception Failure msg -> Alcotest.(check string) "message" "mr boom" msg
  | _ -> Alcotest.fail "exception swallowed"

let test_nested_parallelism_degrades () =
  (* inside a parallel section the default fan-out is 1 domain *)
  let inner =
    Pool.map ~domains:2 (fun _ -> Pool.num_domains ()) [ 0; 1; 2; 3 ]
  in
  List.iter (Alcotest.(check int) "nested default is sequential" 1) inner;
  Alcotest.(check int) "sequential scope" 1
    (Pool.sequential (fun () -> Pool.num_domains ()));
  Alcotest.(check bool) "outside a pool, parallelism is back" true
    (Pool.num_domains () >= 1
    && Pool.num_domains () = max 1 (Domain.recommended_domain_count ()))

let test_run_both () =
  let a, b = Pool.run_both (fun () -> 6 * 7) (fun () -> "ok") in
  Alcotest.(check int) "first" 42 a;
  Alcotest.(check string) "second" "ok" b

let test_parallel_engine_runs_deterministic () =
  (* the real use: run (family, seed) sweeps on several domains and
     compare with the sequential costs *)
  let tasks =
    List.concat_map
      (fun (f : Families.family) ->
        if f.layer = Families.Rate_limited then
          List.map (fun seed -> (f, seed)) [ 1; 2 ]
        else [])
      Families.all
  in
  let run ((f : Families.family), seed) =
    let instance = f.build ~seed in
    let r = Engine.run (Engine.config ~n:8 ()) instance Lru_edf.policy in
    (f.id, seed, Cost.total r.cost, r.executed)
  in
  let sequential = List.map run tasks in
  let parallel = Pool.map ~domains:4 run tasks in
  Alcotest.(check bool) "identical results" true (sequential = parallel)

let test_num_domains_positive () =
  Alcotest.(check bool) "at least one" true (Pool.num_domains () >= 1)

(* The telemetry race regression: the same experiment subset run fully
   sequentially and spread over 4 domains must produce byte-identical
   run_summary artifacts once wall-clock fields are stripped — on the
   pre-atomic Metrics counters the parallel engine_runs / cost deltas
   silently lose updates and this comparison breaks. *)
let test_parallel_experiments_identical_artifacts () =
  let ids = [ "EXP-1"; "EXP-4"; "EXP-5"; "EXP-13" ] in
  let seq =
    Pool.sequential (fun () -> Rrs_experiments.Registry.run_many ~jobs:1 ids)
  in
  let par = Rrs_experiments.Registry.run_many ~jobs:4 ids in
  Alcotest.(check int) "all experiments ran" (List.length ids)
    (List.length par);
  let unwrap (id, r) =
    match r with
    | Ok { Rrs_experiments.Registry.outcome; summary; metrics } ->
        (id, (outcome, summary, metrics))
    | Error f ->
        Alcotest.failf "%s failed: %a" id Rrs_robust.Supervisor.pp_failure f
  in
  let seq = List.map unwrap seq and par = List.map unwrap par in
  List.iter2
    (fun (id_s, ((out_s : Rrs_experiments.Harness.outcome), sum_s, met_s))
         (id_p, ((out_p : Rrs_experiments.Harness.outcome), sum_p, met_p)) ->
      Alcotest.(check string) "input order" id_s id_p;
      Alcotest.(check string)
        (id_s ^ ": same table")
        (Rrs_report.Table.to_string out_s.table)
        (Rrs_report.Table.to_string out_p.table);
      Alcotest.(check (list string)) (id_s ^ ": same findings") out_s.findings
        out_p.findings;
      Alcotest.(check string)
        (id_s ^ ": artifact byte-identical modulo wall time")
        (Rrs_obs.Run_summary.to_line (Rrs_obs.Run_summary.strip_timings sum_s))
        (Rrs_obs.Run_summary.to_line (Rrs_obs.Run_summary.strip_timings sum_p));
      (* the private-registry counters (not the wall-clock timer
         sections) must be jobs-invariant too: this is what makes
         [rrs experiment --metrics --jobs N] deterministic *)
      let counters j =
        match Rrs_obs.Json.member "counters" j with
        | Some c -> Rrs_obs.Json.to_string c
        | None -> "{}"
      in
      Alcotest.(check string)
        (id_s ^ ": registry counters jobs-invariant")
        (counters met_s) (counters met_p))
    seq par

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map = sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "exceptions" `Quick test_exceptions_propagate;
          Alcotest.test_case "backtrace survives" `Quick
            test_exception_backtrace_survives;
          Alcotest.test_case "validation" `Quick test_domains_validation;
          Alcotest.test_case "map_reduce" `Quick
            test_map_reduce_results_and_shards;
          Alcotest.test_case "map_reduce exceptions" `Quick
            test_map_reduce_propagates_exceptions;
          Alcotest.test_case "nested parallelism degrades" `Quick
            test_nested_parallelism_degrades;
          Alcotest.test_case "run_both" `Quick test_run_both;
          Alcotest.test_case "num_domains" `Quick test_num_domains_positive;
        ] );
      ( "integration",
        [
          Alcotest.test_case "parallel engine sweep" `Slow
            test_parallel_engine_runs_deterministic;
          Alcotest.test_case "parallel experiments, identical artifacts" `Slow
            test_parallel_experiments_identical_artifacts;
        ] );
    ]
