(* The robustness layer: supervisor semantics (retry, timeout, typed
   failures), the fault-injection plane (determinism, scoping, domain
   isolation), watchdog invariant detection on synthetic streams,
   crash-safe artifact writing, torn-tail tolerant reading, and the
   supervised experiment sweep end to end. *)

open Rrs_robust
module Fault = Rrs_robust.Fault
module Sink = Rrs_obs.Sink
module Event = Rrs_obs.Event
module Run_summary = Rrs_obs.Run_summary

exception Boom of int

(* a supervisor policy that never touches the wall clock: time is a
   counter and sleeps are recorded *)
let test_clock () =
  let now = ref 0.0 in
  let sleeps = ref [] in
  let clock =
    {
      Supervisor.now = (fun () -> !now);
      sleep =
        (fun s ->
          sleeps := s :: !sleeps;
          now := !now +. s);
    }
  in
  (clock, sleeps)

(* ------------------------------------------------------------------ *)
(* supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let test_supervisor_ok () =
  match Supervisor.run ~name:"ok" (fun () -> 42) with
  | Ok v -> Alcotest.(check int) "value" 42 v
  | Error f -> Alcotest.failf "unexpected failure: %a" Supervisor.pp_failure f

let test_supervisor_fatal () =
  match Supervisor.run ~name:"boom" (fun () -> raise (Boom 7)) with
  | Ok _ -> Alcotest.fail "failure not captured"
  | Error f ->
      Alcotest.(check string) "name" "boom" f.name;
      Alcotest.(check int) "attempts" 1 f.attempts;
      Alcotest.(check string) "phase" "exception" f.phase;
      Alcotest.(check bool) "fatal" true (f.classified = Supervisor.Fatal);
      Alcotest.(check bool) "exn kept" true (f.exn = Boom 7)

let retry_policy ?(retries = 3) ?(seed = 0) clock =
  {
    Supervisor.default with
    retries;
    seed;
    backoff = 0.05;
    backoff_factor = 2.0;
    jitter = 0.5;
    classify = (fun _ -> Supervisor.Transient);
    clock;
  }

let test_supervisor_retries_until_success () =
  let clock, sleeps = test_clock () in
  let calls = ref 0 in
  let thunk () =
    incr calls;
    if !calls < 3 then raise (Boom !calls) else "done"
  in
  (match Supervisor.run ~policy:(retry_policy clock) ~name:"flaky" thunk with
  | Ok v -> Alcotest.(check string) "value" "done" v
  | Error f -> Alcotest.failf "should recover: %a" Supervisor.pp_failure f);
  Alcotest.(check int) "three attempts" 3 !calls;
  Alcotest.(check int) "two backoff sleeps" 2 (List.length !sleeps);
  (* exponential base: first delay in [0.05, 0.075), second doubled *)
  (match List.rev !sleeps with
  | [ d1; d2 ] ->
      Alcotest.(check bool) "d1 in band" true (d1 >= 0.05 && d1 < 0.075);
      Alcotest.(check bool) "d2 in band" true (d2 >= 0.1 && d2 < 0.15)
  | _ -> Alcotest.fail "expected two delays");
  (* the jittered delay sequence is a pure function of the seed *)
  let rerun () =
    let clock, sleeps = test_clock () in
    let calls = ref 0 in
    ignore
      (Supervisor.run ~policy:(retry_policy clock) ~name:"flaky" (fun () ->
           incr calls;
           if !calls < 3 then raise (Boom !calls) else "done"));
    List.rev !sleeps
  in
  Alcotest.(check (list (float 0.0))) "deterministic delays" (rerun ()) (rerun ())

let test_supervisor_exhausts_retries () =
  let clock, _ = test_clock () in
  match
    Supervisor.run
      ~policy:(retry_policy ~retries:2 clock)
      ~name:"hopeless"
      (fun () -> raise (Boom 0))
  with
  | Ok _ -> Alcotest.fail "cannot succeed"
  | Error f ->
      Alcotest.(check int) "retries + 1 attempts" 3 f.attempts;
      Alcotest.(check bool) "transient" true
        (f.classified = Supervisor.Transient)

let test_supervisor_timeout () =
  let stop = Atomic.make false in
  let policy = { Supervisor.default with timeout = Some 0.05 } in
  let result =
    Supervisor.run ~policy ~name:"spin" (fun () ->
        while not (Atomic.get stop) do
          Domain.cpu_relax ()
        done)
  in
  (* let the abandoned attempt domain terminate *)
  Atomic.set stop true;
  match result with
  | Ok () -> Alcotest.fail "spin cannot finish before the deadline"
  | Error f ->
      Alcotest.(check string) "phase" "timeout" f.phase;
      (match f.exn with
      | Supervisor.Timed_out { name; seconds } ->
          Alcotest.(check string) "name" "spin" name;
          Alcotest.(check (float 1e-9)) "seconds" 0.05 seconds
      | e -> Alcotest.failf "wrong exn: %s" (Printexc.to_string e));
      Alcotest.(check bool) "timeouts are transient" true
        (f.classified = Supervisor.Transient)

let test_supervisor_skipped () =
  let f = Supervisor.skipped ~name:"later" in
  Alcotest.(check string) "phase" "skipped" f.phase;
  Alcotest.(check int) "attempts" 0 f.attempts;
  let rendered = Format.asprintf "%a" Supervisor.pp_failure f in
  Alcotest.(check bool) "mentions skip" true
    (String.length rendered > 0
    && String.starts_with ~prefix:"later: skipped" rendered)

let test_classify_default () =
  let c = Supervisor.classify_default in
  Alcotest.(check bool) "timeout transient" true
    (c (Supervisor.Timed_out { name = "x"; seconds = 1.0 })
    = Supervisor.Transient);
  Alcotest.(check bool) "transient injection" true
    (c (Rrs_fault.Injected { point = "p"; hit = 1; transient = true })
    = Supervisor.Transient);
  Alcotest.(check bool) "fatal injection" true
    (c (Rrs_fault.Injected { point = "p"; hit = 1; transient = false })
    = Supervisor.Fatal);
  Alcotest.(check bool) "other exns fatal" true (c (Boom 1) = Supervisor.Fatal)

(* ------------------------------------------------------------------ *)
(* fault plane                                                         *)
(* ------------------------------------------------------------------ *)

let test_fault_inactive_noop () =
  Alcotest.(check bool) "inactive" false (Fault.active ());
  Fault.probe "anything" (* must be a silent no-op *)

let test_fault_nth_fires_once () =
  let plan = Fault.plan [ Fault.fail_on "p" (Fault.Nth 3) ] in
  let hits = ref 0 in
  Fault.with_plan plan (fun () ->
      Alcotest.(check bool) "active" true (Fault.active ());
      try
        for _ = 1 to 10 do
          Fault.probe "p";
          incr hits
        done;
        Alcotest.fail "third probe must raise"
      with Fault.Injected { point; hit; transient } ->
        Alcotest.(check string) "point" "p" point;
        Alcotest.(check int) "hit" 3 hit;
        Alcotest.(check bool) "default fatal" false transient;
        (* the Nth trigger is exact: later hits pass *)
        for _ = 1 to 10 do
          Fault.probe "p"
        done);
  Alcotest.(check int) "two clean hits before" 2 !hits;
  Alcotest.(check (list (pair string int))) "hits" [ ("p", 13) ] (Fault.hits plan);
  Alcotest.(check (list (pair string int)))
    "injected once"
    [ ("p", 1) ]
    (Fault.injected plan);
  Alcotest.(check bool) "scope restored" false (Fault.active ())

let test_fault_every () =
  let plan = Fault.plan [ Fault.fail_on "p" (Fault.Every 4) ] in
  let fired = ref 0 in
  Fault.with_plan plan (fun () ->
      for _ = 1 to 12 do
        try Fault.probe "p" with Fault.Injected _ -> incr fired
      done);
  Alcotest.(check int) "every 4th of 12" 3 !fired

let test_fault_prob_deterministic () =
  let count seed =
    let plan = Fault.plan ~seed [ Fault.fail_on "p" (Fault.Prob 0.3) ] in
    let fired = ref 0 in
    Fault.with_plan plan (fun () ->
        for _ = 1 to 1000 do
          try Fault.probe "p" with Fault.Injected _ -> incr fired
        done);
    !fired
  in
  let a = count 42 and b = count 42 in
  Alcotest.(check int) "same seed, same firings" a b;
  Alcotest.(check bool) "plausible rate" true (a > 200 && a < 400);
  Alcotest.(check bool) "seeds decorrelate" true (count 43 <> a || count 44 <> a)

let test_fault_delay_uses_plan_sleep () =
  let slept = ref [] in
  let plan =
    Fault.plan
      ~sleep:(fun s -> slept := s :: !slept)
      [ Fault.delay_on "p" (Fault.Every 2) ~seconds:0.25 ]
  in
  Fault.with_plan plan (fun () ->
      for _ = 1 to 4 do
        Fault.probe "p"
      done);
  Alcotest.(check (list (float 0.0))) "sleeps" [ 0.25; 0.25 ] !slept;
  Alcotest.(check (list (pair string int)))
    "delays count as firings"
    [ ("p", 2) ]
    (Fault.injected plan)

let test_fault_scope_nests_and_restores () =
  let outer = Fault.plan [ Fault.fail_on "a" (Fault.Nth 1) ] in
  let inner = Fault.plan [ Fault.fail_on "b" (Fault.Nth 1) ] in
  Fault.with_plan outer (fun () ->
      Fault.with_plan inner (fun () ->
          (* inner scope: "a" has no rule *)
          Fault.probe "a";
          try
            Fault.probe "b";
            Alcotest.fail "inner rule must fire"
          with Fault.Injected { point; _ } ->
            Alcotest.(check string) "inner" "b" point);
      (* outer scope restored *)
      try
        Fault.probe "a";
        Alcotest.fail "outer rule must fire"
      with Fault.Injected { point; _ } ->
        Alcotest.(check string) "outer" "a" point);
  Alcotest.(check bool) "fully unwound" false (Fault.active ())

let test_fault_domains_isolated () =
  (* Nth 1 per-domain: every spawned domain gets its own counter, so
     each one's first probe fires — 3 independent injections, exact
     shared totals *)
  let plan = Fault.plan [ Fault.fail_on "p" (Fault.Nth 1) ] in
  Fault.with_plan plan (fun () ->
      let worker () =
        match Fault.probe "p" with
        | () -> false
        | exception Fault.Injected { hit = 1; _ } -> true
        | exception Fault.Injected _ -> false
      in
      let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
      let here = worker () in
      Alcotest.(check (list bool))
        "each domain's first hit fires"
        [ true; true; true ]
        [ here; Domain.join d1; Domain.join d2 ]);
  Alcotest.(check (list (pair string int)))
    "aggregated totals"
    [ ("p", 3) ]
    (Fault.injected plan)

let test_fault_validation () =
  let invalid rules =
    match Fault.plan rules with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "plan must reject the rule"
  in
  invalid [ Fault.fail_on "p" (Fault.Nth 0) ];
  invalid [ Fault.fail_on "p" (Fault.Every 0) ];
  invalid [ Fault.fail_on "p" (Fault.Prob 1.5) ];
  invalid [ Fault.fail_on "p" (Fault.Prob (-0.1)) ]

(* ------------------------------------------------------------------ *)
(* watchdog                                                            *)
(* ------------------------------------------------------------------ *)

let feed ?(policy = Watchdog.Record) ~delta events =
  let wd = Watchdog.create ~policy ~delta () in
  List.iter (Watchdog.observe wd) events;
  Watchdog.finish wd;
  wd

let test_watchdog_clean_stream () =
  let wd =
    feed ~delta:2
      [
        Event.Epoch_open { round = 0; color = 0 };
        Event.Arrival { round = 0; color = 0; count = 2 };
        Event.Counter_wrap { round = 0; color = 0; wraps = 1 };
        Event.Credit { round = 0; color = 0; amount = 2 };
        Event.Reconfigure
          {
            round = 0;
            mini_round = 0;
            resource = 0;
            from_color = Rrs_core.Types.black;
            to_color = 0;
          };
        Event.Execute { round = 0; mini_round = 0; resource = 0; color = 0 };
        Event.Epoch_close { round = 4; color = 0; epochs_ended = 1 };
        Event.Drop { round = 5; color = 0; count = 1 };
      ]
  in
  Alcotest.(check bool) "ok" true (Watchdog.ok wd);
  Alcotest.(check int) "events seen" 8 (Watchdog.events_seen wd)

let expect_violation name invariant events ~delta =
  let wd = feed ~delta events in
  match Watchdog.violations wd with
  | [] -> Alcotest.failf "%s: nothing flagged" name
  | v :: _ ->
      Alcotest.(check string) (name ^ ": invariant") invariant v.invariant

let test_watchdog_violations () =
  expect_violation "rounds go backwards" "round_monotonic" ~delta:2
    [
      Event.Mini_round { round = 5; mini_round = 0 };
      Event.Mini_round { round = 3; mini_round = 0 };
    ];
  expect_violation "execute without configuration" "execute_color" ~delta:2
    [ Event.Execute { round = 0; mini_round = 0; resource = 0; color = 1 } ];
  expect_violation "reconfigure from wrong color" "cache_consistency" ~delta:2
    [
      Event.Reconfigure
        { round = 0; mini_round = 0; resource = 0; from_color = 3; to_color = 1 };
    ];
  expect_violation "self reconfigure" "self_reconfigure" ~delta:2
    [
      Event.Reconfigure
        { round = 0; mini_round = 0; resource = 0; from_color = 2; to_color = 2 };
    ];
  expect_violation "negative drop" "nonneg_count" ~delta:2
    [ Event.Drop { round = 0; color = 0; count = -1 } ];
  expect_violation "credit off delta" "credit_amount" ~delta:2
    [ Event.Credit { round = 0; color = 0; amount = 3 } ];
  expect_violation "close while ineligible" "epoch_lifecycle" ~delta:2
    [ Event.Epoch_close { round = 0; color = 0; epochs_ended = 1 } ]

let test_watchdog_lemma_bounds () =
  (* 5 charges against a single opened epoch breaks the 4·numEpochs
     reconfiguration budget of Lemma 3.3 *)
  let reconfigures =
    List.init 5 (fun i ->
        Event.Reconfigure
          {
            round = 0;
            mini_round = 0;
            resource = i;
            from_color = Rrs_core.Types.black;
            to_color = 0;
          })
  in
  expect_violation "reconfig budget" "lemma_3_3" ~delta:2
    (Event.Epoch_open { round = 0; color = 0 } :: reconfigures);
  (* Δ·numEpochs = 2 ineligible drops allowed; the third violates
     Lemma 3.4 *)
  expect_violation "ineligible drop budget" "lemma_3_4" ~delta:2
    [
      Event.Epoch_open { round = 0; color = 0 };
      Event.Drop { round = 1; color = 0; count = 3 };
    ];
  (* the same stream without the eligibility event is uninstrumented:
     the lemma gates stay off *)
  let wd = feed ~delta:2 [ Event.Drop { round = 1; color = 0; count = 3 } ] in
  Alcotest.(check bool) "uninstrumented drops unbounded" true (Watchdog.ok wd)

let test_watchdog_fail_fast_and_off () =
  (match
     feed ~policy:Watchdog.Fail_fast ~delta:2
       [ Event.Drop { round = 0; color = 0; count = -1 } ]
   with
  | exception Watchdog.Invariant_violation { invariant; _ } ->
      Alcotest.(check string) "raises" "nonneg_count" invariant
  | _ -> Alcotest.fail "fail-fast must raise");
  let wd = Watchdog.create ~policy:Watchdog.Off ~delta:2 () in
  let inner = Sink.memory () in
  Alcotest.(check bool) "off attach is identity" true
    (Watchdog.attach wd inner == inner)

let test_watchdog_forwards () =
  let wd = Watchdog.create ~policy:Watchdog.Record ~delta:2 () in
  let inner = Sink.memory () in
  let sink = Watchdog.attach wd inner in
  Alcotest.(check bool) "attached sink is enabled" true (Sink.enabled sink);
  let e = Event.Mini_round { round = 0; mini_round = 0 } in
  Sink.emit sink e;
  Alcotest.(check int) "forwarded" 1 (List.length (Sink.events inner));
  Alcotest.(check int) "observed" 1 (Watchdog.events_seen wd)

(* ------------------------------------------------------------------ *)
(* crash-safe artifacts                                                *)
(* ------------------------------------------------------------------ *)

let temp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "rrs_test_%d_%s" (Unix.getpid ()) name)

let test_with_jsonl_atomic_commit () =
  let path = temp_path "atomic.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  Sink.with_jsonl path (fun sink ->
      Sink.emit sink (Event.Mini_round { round = 0; mini_round = 0 });
      (* nothing visible at the final path until commit *)
      Alcotest.(check bool) "not yet renamed" false (Sys.file_exists path));
  let lines = In_channel.with_open_text path In_channel.input_lines in
  Alcotest.(check int) "one line" 1 (List.length lines);
  Sys.remove path

let test_with_jsonl_commits_on_raise () =
  let path = temp_path "crash.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  (try
     Sink.with_jsonl path (fun sink ->
         for round = 0 to 9 do
           Sink.emit sink (Event.Mini_round { round; mini_round = 0 })
         done;
         raise (Boom 1))
   with Boom 1 -> ());
  let lines = In_channel.with_open_text path In_channel.input_lines in
  Alcotest.(check int) "no buffered line lost" 10 (List.length lines);
  List.iter
    (fun line ->
      match Event.of_line line with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "unparseable committed line: %s" msg)
    lines;
  Sys.remove path

let summary ~id cost =
  Run_summary.make ~id ~kind:"experiment" ~reconfig_cost:cost ~drop_cost:0 ()

let test_load_tolerant () =
  let path = temp_path "torn.jsonl" in
  let a = Run_summary.to_line (summary ~id:"A" 3) in
  let b = Run_summary.to_line (summary ~id:"B" 5) in
  (* clean file: same result as strict load, no tear reported *)
  Out_channel.with_open_text path (fun oc ->
      output_string oc (a ^ "\n" ^ b ^ "\n"));
  (match Run_summary.load_tolerant path with
  | Ok (summaries, None) ->
      Alcotest.(check (list string)) "both ids" [ "A"; "B" ]
        (List.map (fun s -> s.Run_summary.id) summaries)
  | Ok (_, Some _) -> Alcotest.fail "no tear in a clean file"
  | Error msg -> Alcotest.fail msg);
  (* crash-truncated tail: strict load refuses, tolerant load skips and
     reports the torn line *)
  let torn_tail = String.sub b 0 (String.length b / 2) in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (a ^ "\n" ^ torn_tail));
  (match Run_summary.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict load must reject the torn tail");
  (match Run_summary.load_tolerant path with
  | Ok (summaries, Some { lineno; _ }) ->
      Alcotest.(check (list string)) "prefix kept" [ "A" ]
        (List.map (fun s -> s.Run_summary.id) summaries);
      Alcotest.(check int) "tear located" 2 lineno
  | Ok (_, None) -> Alcotest.fail "tear not reported"
  | Error msg -> Alcotest.fail msg);
  (* corruption before the tail stays a hard error *)
  Out_channel.with_open_text path (fun oc ->
      output_string oc (torn_tail ^ "\n" ^ a ^ "\n"));
  (match Run_summary.load_tolerant path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mid-file corruption must not be tolerated");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* supervised sweep                                                    *)
(* ------------------------------------------------------------------ *)

let sweep_ids = [ "EXP-A"; "EXP-B" ]

let test_run_many_contains_injected_failure () =
  (* harness.run_policy Nth 1: the first engine run of the first
     experiment dies; the sibling keeps its result and order holds *)
  let plan = Fault.plan [ Fault.fail_on "harness.run_policy" (Fault.Nth 1) ] in
  let results =
    Fault.with_plan plan (fun () ->
        Rrs_experiments.Registry.run_many ~jobs:1 sweep_ids)
  in
  Alcotest.(check (list string)) "order preserved" sweep_ids
    (List.map fst results);
  (match results with
  | [ (_, Error f); (_, Ok _) ] ->
      Alcotest.(check bool) "injection captured" true
        (match f.exn with Fault.Injected _ -> true | _ -> false)
  | _ -> Alcotest.fail "expected first failed, second ok");
  Alcotest.(check int) "one failure listed" 1
    (List.length (Rrs_experiments.Registry.failures results))

let test_run_many_keep_going_false_skips () =
  let plan = Fault.plan [ Fault.fail_on "harness.run_policy" (Fault.Nth 1) ] in
  let results =
    Fault.with_plan plan (fun () ->
        Rrs_experiments.Registry.run_many ~jobs:1 ~keep_going:false sweep_ids)
  in
  match results with
  | [ (_, Error first); (_, Error second) ] ->
      Alcotest.(check string) "first really ran" "exception" first.phase;
      Alcotest.(check string) "second skipped" "skipped" second.phase
  | _ -> Alcotest.fail "expected failure then skip"

let test_run_many_parallel_under_faults () =
  (* every domain's first pool task dies at the probe, outside the
     supervised thunk — map_results still returns all four entries *)
  let ids = [ "EXP-A"; "EXP-B" ] in
  let plan = Fault.plan [ Fault.fail_on "pool.worker" (Fault.Nth 1) ] in
  let results =
    Fault.with_plan plan (fun () ->
        Rrs_experiments.Registry.run_many ~jobs:2 ids)
  in
  Alcotest.(check (list string)) "no sibling lost" ids (List.map fst results);
  List.iter
    (fun (_, r) ->
      match r with
      | Error { Supervisor.exn = Fault.Injected { point; _ }; _ } ->
          Alcotest.(check string) "pool injection" "pool.worker" point
      | Error f ->
          Alcotest.failf "unexpected failure: %a" Supervisor.pp_failure f
      | Ok _ -> ())
    results

(* the --resume contract, at the library level: interrupt a sweep after
   one experiment, leave a torn tail, and the resumed sweep completes
   exactly the missing ids — the merged artifact equals the
   uninterrupted run's modulo wall-clock fields *)
let test_resume_completes_missing_ids () =
  let strip s = Run_summary.to_line (Run_summary.strip_timings s) in
  let summaries ids =
    List.filter_map
      (fun (_, r) ->
        match r with
        | Ok { Rrs_experiments.Registry.summary = s; _ } -> Some s
        | Error _ -> None)
      (Rrs_experiments.Registry.run_many ~jobs:1 ids)
  in
  let uninterrupted = summaries sweep_ids in
  let path = temp_path "resume.jsonl" in
  (* the simulated crash: only EXP-A's line landed, then a torn write *)
  Out_channel.with_open_text path (fun oc ->
      Run_summary.write oc (List.hd uninterrupted);
      output_string oc "{\"type\":\"run_summ");
  (match Run_summary.load_tolerant path with
  | Ok (previous, Some _) ->
      let done_ids = List.map (fun s -> s.Run_summary.id) previous in
      let todo =
        List.filter (fun id -> not (List.mem id done_ids)) sweep_ids
      in
      Alcotest.(check (list string)) "exactly the missing ids" [ "EXP-B" ] todo;
      let merged = previous @ summaries todo in
      Alcotest.(check (list string))
        "merged artifact = uninterrupted modulo timings"
        (List.map strip uninterrupted)
        (List.map strip merged)
  | Ok (_, None) -> Alcotest.fail "torn tail not detected"
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* crash dumps                                                         *)
(* ------------------------------------------------------------------ *)

module Flight_recorder = Rrs_obs.Flight_recorder

(* a supervisor failure under an armed recorder scope must leave a
   black-box: crash-<name>.jsonl, header line first, then the retained
   event window *)
let test_supervisor_auto_crash_dump () =
  let dir = temp_path "dumps" in
  let recorder = Flight_recorder.create ~capacity:8 () in
  let result =
    Flight_recorder.with_recorder ~dump_dir:dir recorder (fun () ->
        for round = 1 to 20 do
          Flight_recorder.record recorder
            (Event.Drop { round; color = 0; count = 1 })
        done;
        Supervisor.run ~name:"boom task" (fun () -> raise (Boom 3)))
  in
  (match result with
  | Error f -> Alcotest.(check bool) "exn kept" true (f.exn = Boom 3)
  | Ok _ -> Alcotest.fail "failure not captured");
  let path = Flight_recorder.crash_dump_path ~dir ~name:"boom task" in
  Alcotest.(check bool)
    "name sanitised into the filename" true
    (Filename.basename path = "crash-boom-task.jsonl");
  (match In_channel.with_open_text path In_channel.input_lines with
  | [] -> Alcotest.fail "empty dump"
  | header :: events ->
      let json = Rrs_obs.Json.parse_exn header in
      let str key =
        Option.get (Rrs_obs.Json.member key json)
        |> Rrs_obs.Json.to_string_lit |> Result.get_ok
      in
      Alcotest.(check string) "header type" "flight_recorder" (str "type");
      Alcotest.(check string) "header name" "boom task" (str "name");
      Alcotest.(check bool)
        "reason carries the exception" true
        (let reason = str "reason" in
         let nl = String.length "Boom" and hl = String.length reason in
         let rec go i =
           i + nl <= hl && (String.sub reason i nl = "Boom" || go (i + 1))
         in
         go 0);
      (* capacity 8, 20 recorded: the dump holds exactly the last 8 *)
      Alcotest.(check int) "retained window" 8 (List.length events);
      List.iteri
        (fun i line ->
          match Result.get_ok (Event.of_line line) with
          | Event.Drop { round; _ } ->
              Alcotest.(check int) "suffix, oldest first" (13 + i) round
          | _ -> Alcotest.fail "unexpected event in dump")
        events);
  Sys.remove path

(* a transient failure that recovers on retry is not a final failure:
   no dump; and a clean run leaves nothing either *)
let test_crash_dump_only_on_final_failure () =
  let dir = temp_path "dumps_clean" in
  let recorder = Flight_recorder.create () in
  let clock, _ = test_clock () in
  let calls = ref 0 in
  let result =
    Flight_recorder.with_recorder ~dump_dir:dir recorder (fun () ->
        Supervisor.run ~policy:(retry_policy clock) ~name:"recovers" (fun () ->
            incr calls;
            if !calls < 2 then raise (Boom 1) else "ok"))
  in
  (match result with
  | Ok v -> Alcotest.(check string) "recovered" "ok" v
  | Error f -> Alcotest.failf "should recover: %a" Supervisor.pp_failure f);
  Alcotest.(check bool)
    "no dump for a recovered task" false
    (Sys.file_exists (Flight_recorder.crash_dump_path ~dir ~name:"recovers"));
  (* without a dump_dir the scope is unarmed: a final failure dumps
     nowhere and still returns normally *)
  let unarmed = Flight_recorder.create () in
  (match
     Flight_recorder.with_recorder unarmed (fun () ->
         Supervisor.run ~name:"unarmed" (fun () -> raise (Boom 9)))
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "failure not captured");
  Alcotest.(check bool)
    "unarmed scope left no directory" false
    (Sys.file_exists (Flight_recorder.crash_dump_path ~dir:"." ~name:"unarmed"))

let () =
  Alcotest.run "robust"
    [
      ( "supervisor",
        [
          Alcotest.test_case "ok" `Quick test_supervisor_ok;
          Alcotest.test_case "fatal capture" `Quick test_supervisor_fatal;
          Alcotest.test_case "retry until success" `Quick
            test_supervisor_retries_until_success;
          Alcotest.test_case "retries exhausted" `Quick
            test_supervisor_exhausts_retries;
          Alcotest.test_case "timeout" `Quick test_supervisor_timeout;
          Alcotest.test_case "skipped" `Quick test_supervisor_skipped;
          Alcotest.test_case "classify_default" `Quick test_classify_default;
        ] );
      ( "fault",
        [
          Alcotest.test_case "inactive no-op" `Quick test_fault_inactive_noop;
          Alcotest.test_case "nth" `Quick test_fault_nth_fires_once;
          Alcotest.test_case "every" `Quick test_fault_every;
          Alcotest.test_case "prob deterministic" `Quick
            test_fault_prob_deterministic;
          Alcotest.test_case "delay" `Quick test_fault_delay_uses_plan_sleep;
          Alcotest.test_case "scope nesting" `Quick
            test_fault_scope_nests_and_restores;
          Alcotest.test_case "domain isolation" `Quick
            test_fault_domains_isolated;
          Alcotest.test_case "validation" `Quick test_fault_validation;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "clean stream" `Quick test_watchdog_clean_stream;
          Alcotest.test_case "violations" `Quick test_watchdog_violations;
          Alcotest.test_case "lemma bounds" `Quick test_watchdog_lemma_bounds;
          Alcotest.test_case "fail-fast and off" `Quick
            test_watchdog_fail_fast_and_off;
          Alcotest.test_case "forwards" `Quick test_watchdog_forwards;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "atomic commit" `Quick
            test_with_jsonl_atomic_commit;
          Alcotest.test_case "commit on raise" `Quick
            test_with_jsonl_commits_on_raise;
          Alcotest.test_case "tolerant load" `Quick test_load_tolerant;
        ] );
      ( "supervised sweep",
        [
          Alcotest.test_case "contains failures" `Quick
            test_run_many_contains_injected_failure;
          Alcotest.test_case "keep-going=false skips" `Quick
            test_run_many_keep_going_false_skips;
          Alcotest.test_case "parallel under faults" `Quick
            test_run_many_parallel_under_faults;
          Alcotest.test_case "supervisor takes a crash dump" `Quick
            test_supervisor_auto_crash_dump;
          Alcotest.test_case "no dump unless final failure" `Quick
            test_crash_dump_only_on_final_failure;
          Alcotest.test_case "resume completes missing ids" `Quick
            test_resume_completes_missing_ids;
        ] );
    ]
