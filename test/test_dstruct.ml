(* Unit and property tests for the container substrate. *)

module BH = Rrs_dstruct.Binary_heap
module IH = Rrs_dstruct.Indexed_heap
module IntH = Rrs_dstruct.Int_heap
module IIH = Rrs_dstruct.Int_indexed_heap
module PH = Rrs_dstruct.Pairing_heap
module DQ = Rrs_dstruct.Deque
module RB = Rrs_dstruct.Ring_buffer
module FW = Rrs_dstruct.Fenwick

let int_cmp = Stdlib.compare

(* ------------------------------------------------------------------ *)
(* Binary heap                                                         *)
(* ------------------------------------------------------------------ *)

let test_bh_empty () =
  let h = BH.create ~cmp:int_cmp () in
  Alcotest.(check bool) "empty" true (BH.is_empty h);
  Alcotest.(check int) "length" 0 (BH.length h);
  Alcotest.check_raises "min raises" Not_found (fun () -> ignore (BH.min h));
  Alcotest.check_raises "pop raises" Not_found (fun () ->
      ignore (BH.pop_min h));
  Alcotest.(check (option int)) "pop_opt" None (BH.pop_min_opt h)

let test_bh_order () =
  let h = BH.create ~cmp:int_cmp () in
  List.iter (BH.add h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (BH.length h);
  Alcotest.(check int) "min" 1 (BH.min h);
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ]
    (BH.to_sorted_list h);
  Alcotest.(check int) "to_sorted_list is nondestructive" 7 (BH.length h);
  let drained = List.init 7 (fun _ -> BH.pop_min h) in
  Alcotest.(check (list int)) "drain order" [ 1; 1; 2; 3; 4; 5; 9 ] drained;
  Alcotest.(check bool) "empty after drain" true (BH.is_empty h)

let test_bh_of_array () =
  let h = BH.of_array ~cmp:int_cmp [| 3; 1; 2 |] in
  Alcotest.(check bool) "invariant" true (BH.check_invariant h);
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (BH.to_sorted_list h)

let test_bh_clear_and_grow () =
  let h = BH.create ~cmp:int_cmp ~initial_capacity:1 () in
  for i = 100 downto 1 do
    BH.add h i
  done;
  Alcotest.(check int) "grown" 100 (BH.length h);
  Alcotest.(check int) "min" 1 (BH.min h);
  BH.clear h;
  Alcotest.(check bool) "cleared" true (BH.is_empty h);
  BH.add h 42;
  Alcotest.(check int) "usable after clear" 42 (BH.min h)

let test_bh_fold_iter () =
  let h = BH.of_array ~cmp:int_cmp [| 4; 2; 7 |] in
  Alcotest.(check int) "fold sum" 13 (BH.fold ( + ) 0 h);
  let count = ref 0 in
  BH.iter (fun _ -> incr count) h;
  Alcotest.(check int) "iter count" 3 !count

let test_bh_peek () =
  let h = BH.create ~cmp:int_cmp () in
  Alcotest.(check (option int)) "empty" None (BH.peek_min_opt h);
  List.iter (BH.add h) [ 5; 2; 7 ];
  Alcotest.(check (option int)) "min" (Some 2) (BH.peek_min_opt h);
  Alcotest.(check int) "nondestructive" 3 (BH.length h);
  Alcotest.(check int) "agrees with pop" 2 (BH.pop_min h)

(* regression: [create ~initial_capacity] used to be silently ignored,
   so the first [add] always started from the tiny default and paid the
   doubling ladder *)
let test_bh_initial_capacity () =
  let h = BH.create ~cmp:int_cmp ~initial_capacity:64 () in
  Alcotest.(check int) "capacity honored" 64 (BH.capacity h);
  BH.add h 7;
  Alcotest.(check int) "first add does not grow" 64 (BH.capacity h);
  for i = 1 to 63 do
    BH.add h i
  done;
  Alcotest.(check int) "still at hint when full" 64 (BH.capacity h);
  BH.add h 99;
  Alcotest.(check bool) "grows past the hint" true (BH.capacity h > 64)

let prop_bh_sorts =
  QCheck.Test.make ~count:300 ~name:"binary heap sorts like List.sort"
    QCheck.(list int)
    (fun xs ->
      let h = BH.create ~cmp:int_cmp () in
      List.iter (BH.add h) xs;
      BH.to_sorted_list h = List.sort int_cmp xs && BH.check_invariant h)

let prop_bh_heapify =
  QCheck.Test.make ~count:300 ~name:"of_array satisfies heap invariant"
    QCheck.(array int)
    (fun a -> BH.check_invariant (BH.of_array ~cmp:int_cmp a))

(* ------------------------------------------------------------------ *)
(* Indexed heap                                                        *)
(* ------------------------------------------------------------------ *)

let test_ih_basics () =
  let h = IH.create ~cmp:int_cmp ~capacity:8 in
  IH.insert h 3 30;
  IH.insert h 1 10;
  IH.insert h 5 50;
  Alcotest.(check int) "length" 3 (IH.length h);
  Alcotest.(check bool) "mem" true (IH.mem h 3);
  Alcotest.(check bool) "not mem" false (IH.mem h 0);
  Alcotest.(check int) "priority" 30 (IH.priority h 3);
  Alcotest.(check (pair int int)) "min" (1, 10) (IH.min h);
  IH.update h 5 5;
  Alcotest.(check (pair int int)) "decrease-key" (5, 5) (IH.min h);
  IH.update h 5 500;
  Alcotest.(check (pair int int)) "increase-key" (1, 10) (IH.min h);
  IH.remove h 1;
  Alcotest.(check (pair int int)) "after remove" (3, 30) (IH.min h);
  IH.remove h 1;
  Alcotest.(check int) "remove absent is noop" 2 (IH.length h);
  Alcotest.(check bool) "invariant" true (IH.check_invariant h)

let test_ih_update_inserts () =
  let h = IH.create ~cmp:int_cmp ~capacity:4 in
  IH.update h 2 20;
  Alcotest.(check bool) "update inserts" true (IH.mem h 2);
  Alcotest.check_raises "double insert rejected"
    (Invalid_argument "Indexed_heap.insert: key present") (fun () ->
      IH.insert h 2 7)

let test_ih_out_of_range () =
  let h = IH.create ~cmp:int_cmp ~capacity:2 in
  Alcotest.check_raises "key range"
    (Invalid_argument "Indexed_heap: key out of range") (fun () ->
      IH.insert h 2 0)

let test_ih_smallest () =
  let h = IH.create ~cmp:int_cmp ~capacity:10 in
  List.iteri (fun key prio -> IH.insert h key prio) [ 40; 10; 30; 20; 50 ];
  Alcotest.(check (list (pair int int)))
    "smallest 3"
    [ (1, 10); (3, 20); (2, 30) ]
    (IH.smallest h 3);
  Alcotest.(check int) "smallest does not consume" 5 (IH.length h);
  Alcotest.(check (list (pair int int)))
    "smallest beyond size"
    [ (1, 10); (3, 20); (2, 30); (0, 40); (4, 50) ]
    (IH.smallest h 99)

let test_ih_peek () =
  let h = IH.create ~cmp:int_cmp ~capacity:4 in
  Alcotest.(check bool) "empty" true (IH.peek_min_opt h = None);
  IH.insert h 2 20;
  IH.insert h 0 5;
  Alcotest.(check bool) "min" true (IH.peek_min_opt h = Some (0, 5));
  Alcotest.(check int) "nondestructive" 2 (IH.length h);
  IH.remove h 0;
  Alcotest.(check bool) "tracks removals" true (IH.peek_min_opt h = Some (2, 20))

let test_ih_clear () =
  let h = IH.create ~cmp:int_cmp ~capacity:4 in
  IH.insert h 0 1;
  IH.insert h 1 2;
  IH.clear h;
  Alcotest.(check bool) "cleared" true (IH.is_empty h);
  Alcotest.(check bool) "mem after clear" false (IH.mem h 0);
  IH.insert h 0 9;
  Alcotest.(check (pair int int)) "reusable" (0, 9) (IH.min h)

(* model-based: random ops against an association-list model *)
let prop_ih_model =
  let open QCheck in
  let op =
    oneof
      [
        map (fun (k, p) -> `Update (k, p)) (pair (int_bound 15) small_int);
        map (fun k -> `Remove k) (int_bound 15);
        always `Pop;
      ]
  in
  Test.make ~count:300 ~name:"indexed heap matches a model" (list op)
    (fun ops ->
      let h = IH.create ~cmp:int_cmp ~capacity:16 in
      let model = Hashtbl.create 16 in
      let model_min () =
        Hashtbl.fold
          (fun k p acc ->
            match acc with
            | None -> Some (p, k)
            | Some (bp, bk) ->
                if (p, k) < (bp, bk) then Some (p, k) else Some (bp, bk))
          model None
      in
      List.for_all
        (fun op ->
          (match op with
          | `Update (k, p) ->
              IH.update h k p;
              Hashtbl.replace model k p
          | `Remove k ->
              IH.remove h k;
              Hashtbl.remove model k
          | `Pop -> (
              match IH.pop_min_opt h with
              | None -> ()
              | Some (k, _) -> Hashtbl.remove model k));
          IH.check_invariant h
          && IH.length h = Hashtbl.length model
          &&
          (* priority ties are broken arbitrarily by the heap, so compare
             priorities only *)
          match (model_min (), IH.pop_min_opt h) with
          | None, None -> true
          | Some (p, _), Some (k', p') ->
              IH.insert h k' p';
              (* put it back *)
              p = p'
          | _ -> false)
        ops)

(* ------------------------------------------------------------------ *)
(* Int heap (flat 4-ary)                                               *)
(* ------------------------------------------------------------------ *)

let test_inth_basics () =
  let h = IntH.create ~initial_capacity:4 () in
  Alcotest.(check int) "capacity honored" 4 (IntH.capacity h);
  Alcotest.(check bool) "empty" true (IntH.is_empty h);
  Alcotest.check_raises "min raises" Not_found (fun () -> ignore (IntH.min h));
  List.iter (IntH.add h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check bool) "invariant" true (IntH.check_invariant h);
  Alcotest.(check int) "min" 1 (IntH.min h);
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ]
    (IntH.to_sorted_list h);
  Alcotest.(check int) "nondestructive" 7 (IntH.length h);
  let drained = List.init 7 (fun _ -> IntH.pop_min h) in
  Alcotest.(check (list int)) "drain order" [ 1; 1; 2; 3; 4; 5; 9 ] drained;
  IntH.clear h;
  IntH.add h 42;
  Alcotest.(check int) "usable after clear" 42 (IntH.min h)

let prop_inth_sorts =
  QCheck.Test.make ~count:300 ~name:"int heap sorts like List.sort"
    QCheck.(list int)
    (fun xs ->
      let xs = List.map abs xs in
      let h = IntH.create () in
      List.iter (IntH.add h) xs;
      IntH.to_sorted_list h = List.sort int_cmp xs && IntH.check_invariant h)

(* ------------------------------------------------------------------ *)
(* Int indexed heap (flat 4-ary)                                       *)
(* ------------------------------------------------------------------ *)

let test_iih_basics () =
  let h = IIH.create ~capacity:8 in
  IIH.insert h 3 30;
  IIH.insert h 1 10;
  IIH.insert h 5 50;
  Alcotest.(check int) "length" 3 (IIH.length h);
  Alcotest.(check bool) "mem" true (IIH.mem h 3);
  Alcotest.(check bool) "not mem" false (IIH.mem h 0);
  Alcotest.(check int) "priority" 30 (IIH.priority h 3);
  Alcotest.(check (pair int int)) "min" (1, 10) (IIH.min h);
  Alcotest.(check int) "min_key" 1 (IIH.min_key h);
  IIH.update h 5 5;
  Alcotest.(check (pair int int)) "decrease-key" (5, 5) (IIH.min h);
  IIH.update h 5 500;
  Alcotest.(check (pair int int)) "increase-key" (1, 10) (IIH.min h);
  IIH.remove h 1;
  Alcotest.(check (pair int int)) "after remove" (3, 30) (IIH.min h);
  IIH.remove h 1;
  Alcotest.(check int) "remove absent is noop" 2 (IIH.length h);
  Alcotest.(check bool) "invariant" true (IIH.check_invariant h);
  Alcotest.check_raises "key range"
    (Invalid_argument "Int_indexed_heap: key out of range") (fun () ->
      IIH.insert h 8 0)

let test_iih_smallest_into () =
  let h = IIH.create ~capacity:10 in
  List.iteri (fun key prio -> IIH.insert h key prio) [ 40; 10; 30; 20; 50 ];
  let out = Array.make 10 (-1) in
  let got = IIH.smallest_into h 3 ~out in
  Alcotest.(check int) "count" 3 got;
  Alcotest.(check (list int)) "ascending priority order" [ 1; 3; 2 ]
    (Array.to_list (Array.sub out 0 got));
  Alcotest.(check int) "nondestructive" 5 (IIH.length h);
  Alcotest.(check int) "beyond size" 5 (IIH.smallest_into h 99 ~out);
  Alcotest.(check (list (pair int int)))
    "smallest list agrees"
    [ (1, 10); (3, 20); (2, 30) ]
    (IIH.smallest h 3);
  Alcotest.check_raises "out too small"
    (Invalid_argument "Int_indexed_heap.smallest_into: out buffer too small")
    (fun () -> ignore (IIH.smallest_into h 3 ~out:(Array.make 2 0)))

(* differential: the flat 4-ary heap against the reference Indexed_heap
   on identical random op sequences — same membership, same priorities,
   same minimum at every step *)
let iih_op =
  let open QCheck in
  oneof
    [
      map (fun (k, p) -> `Update (k, p)) (pair (int_bound 15) small_nat);
      map (fun k -> `Remove k) (int_bound 15);
      always `Pop;
    ]

let prop_iih_differential =
  QCheck.Test.make ~count:500
    ~name:"int indexed heap matches Indexed_heap on random ops"
    QCheck.(list iih_op)
    (fun ops ->
      let flat = IIH.create ~capacity:16 in
      let reference = IH.create ~cmp:int_cmp ~capacity:16 in
      List.for_all
        (fun op ->
          (match op with
          | `Update (k, p) ->
              IIH.update flat k p;
              IH.update reference k p
          | `Remove k ->
              IIH.remove flat k;
              IH.remove reference k
          | `Pop -> (
              (* pop both; priority ties may pick different keys, so
                 re-align by removing the flat heap's choice from both *)
              match IIH.pop_min_opt flat with
              | None -> assert (IH.pop_min_opt reference = None)
              | Some (k, p) ->
                  if IH.priority reference k <> p then
                    failwith "pop priority mismatch";
                  IH.remove reference k));
          IIH.check_invariant flat
          && IIH.length flat = IH.length reference
          && List.for_all
               (fun k ->
                 IIH.mem flat k = IH.mem reference k
                 && ((not (IIH.mem flat k))
                    || IIH.priority flat k = IH.priority reference k))
               (List.init 16 Fun.id)
          &&
          match (IIH.peek_min_opt flat, IH.peek_min_opt reference) with
          | None, None -> true
          | Some (_, p), Some (_, p') -> p = p'
          | _ -> false)
        ops)

(* storm: the 4-ary invariant (and both directions of the position
   index) survives arbitrary interleavings of update/remove/pop *)
let prop_iih_storm =
  QCheck.Test.make ~count:200 ~name:"4-ary invariant under op storms"
    QCheck.(pair (int_range 1 64) (list iih_op))
    (fun (cap, ops) ->
      let h = IIH.create ~capacity:64 in
      List.iter
        (fun op ->
          match op with
          | `Update (k, p) -> IIH.update h (k mod cap) p
          | `Remove k -> IIH.remove h (k mod cap)
          | `Pop -> ignore (IIH.pop_min_opt h))
        ops;
      IIH.check_invariant h)

let prop_iih_smallest_matches_sort =
  QCheck.Test.make ~count:300 ~name:"smallest_into = sorted prefix"
    QCheck.(pair (int_bound 20) (list (pair (int_bound 31) small_nat)))
    (fun (k, bindings) ->
      let h = IIH.create ~capacity:32 in
      (* distinct priorities (key is the low tie-break, as in the packed
         rank keys) so the expected prefix is unique *)
      List.iter (fun (key, p) -> IIH.update h key ((p * 32) + key)) bindings;
      let out = Array.make 32 (-1) in
      let got = IIH.smallest_into h k ~out in
      let expected =
        let all = ref [] in
        IIH.iter (fun key p -> all := (p, key) :: !all) h;
        List.filteri
          (fun i _ -> i < k)
          (List.map snd (List.sort compare !all))
      in
      got = List.length expected
      && Array.to_list (Array.sub out 0 got) = expected
      && IIH.check_invariant h)

(* ------------------------------------------------------------------ *)
(* Pairing heap                                                        *)
(* ------------------------------------------------------------------ *)

let test_ph_basics () =
  let h = PH.of_list ~cmp:int_cmp [ 3; 1; 2 ] in
  Alcotest.(check int) "length" 3 (PH.length h);
  Alcotest.(check int) "min" 1 (PH.min h);
  let x, h' = PH.pop_min h in
  Alcotest.(check int) "pop" 1 x;
  Alcotest.(check int) "persistence: original intact" 3 (PH.length h);
  Alcotest.(check int) "tail length" 2 (PH.length h');
  Alcotest.check_raises "empty min" Not_found (fun () ->
      ignore (PH.min (PH.empty ~cmp:int_cmp)))

let test_ph_merge () =
  let a = PH.of_list ~cmp:int_cmp [ 5; 3 ] in
  let b = PH.of_list ~cmp:int_cmp [ 4; 1 ] in
  let m = PH.merge a b in
  Alcotest.(check (list int)) "merged" [ 1; 3; 4; 5 ] (PH.to_sorted_list m)

let prop_ph_sorts =
  QCheck.Test.make ~count:300 ~name:"pairing heap sorts like List.sort"
    QCheck.(list int)
    (fun xs ->
      PH.to_sorted_list (PH.of_list ~cmp:int_cmp xs) = List.sort int_cmp xs)

(* ------------------------------------------------------------------ *)
(* Deque                                                               *)
(* ------------------------------------------------------------------ *)

let test_dq_fifo () =
  let d = List.fold_left (fun d x -> DQ.push_back x d) DQ.empty [ 1; 2; 3 ] in
  Alcotest.(check int) "front" 1 (DQ.front d);
  Alcotest.(check int) "back" 3 (DQ.back d);
  let x, d = DQ.pop_front d in
  let y, d = DQ.pop_front d in
  let z, d = DQ.pop_front d in
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] [ x; y; z ];
  Alcotest.(check bool) "empty" true (DQ.is_empty d)

let test_dq_lifo () =
  let d = List.fold_left (fun d x -> DQ.push_front x d) DQ.empty [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "to_list" [ 3; 2; 1 ] (DQ.to_list d);
  let x, d' = DQ.pop_back d in
  Alcotest.(check int) "pop_back" 1 x;
  Alcotest.(check int) "len" 2 (DQ.length d');
  Alcotest.(check int) "persistent" 3 (DQ.length d)

let test_dq_errors () =
  Alcotest.check_raises "front of empty" Not_found (fun () ->
      ignore (DQ.front DQ.empty));
  Alcotest.check_raises "pop_back of empty" Not_found (fun () ->
      ignore (DQ.pop_back DQ.empty))

let test_dq_map_fold () =
  let d = DQ.of_list [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "map" [ 2; 4; 6 ] (DQ.to_list (DQ.map (( * ) 2) d));
  Alcotest.(check int) "fold" 6 (DQ.fold_left ( + ) 0 d)

(* model-based: a deque behaves like a list *)
let prop_dq_model =
  let open QCheck in
  let op =
    oneof
      [
        map (fun x -> `Push_front x) small_int;
        map (fun x -> `Push_back x) small_int;
        always `Pop_front;
        always `Pop_back;
      ]
  in
  Test.make ~count:300 ~name:"deque matches a list model" (list op) (fun ops ->
      let d = ref DQ.empty in
      let model = ref [] in
      List.for_all
        (fun op ->
          (match op with
          | `Push_front x ->
              d := DQ.push_front x !d;
              model := x :: !model
          | `Push_back x ->
              d := DQ.push_back x !d;
              model := !model @ [ x ]
          | `Pop_front -> (
              match (DQ.pop_front_opt !d, !model) with
              | Some (x, d'), y :: rest when x = y ->
                  d := d';
                  model := rest
              | None, [] -> ()
              | _ -> failwith "front mismatch")
          | `Pop_back -> (
              match (DQ.pop_back_opt !d, List.rev !model) with
              | Some (x, d'), y :: rest when x = y ->
                  d := d';
                  model := List.rev rest
              | None, [] -> ()
              | _ -> failwith "back mismatch"));
          DQ.to_list !d = !model && DQ.length !d = List.length !model)
        ops)

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

let test_rb_basics () =
  let r = RB.create ~capacity:3 in
  Alcotest.(check bool) "empty" true (RB.is_empty r);
  RB.push r 1;
  RB.push r 2;
  Alcotest.(check (option int)) "oldest" (Some 1) (RB.oldest r);
  Alcotest.(check (option int)) "newest" (Some 2) (RB.newest r);
  RB.push r 3;
  Alcotest.(check bool) "full" true (RB.is_full r);
  RB.push r 4;
  Alcotest.(check (list int)) "evicted oldest" [ 2; 3; 4 ] (RB.to_list r);
  Alcotest.(check int) "get" 3 (RB.get r 1);
  Alcotest.check_raises "get out of range" (Invalid_argument "Ring_buffer.get")
    (fun () -> ignore (RB.get r 3));
  RB.clear r;
  Alcotest.(check int) "cleared" 0 (RB.length r)

let prop_rb_window =
  QCheck.Test.make ~count:300 ~name:"ring buffer keeps the last k elements"
    QCheck.(pair (int_range 1 10) (list small_int))
    (fun (cap, xs) ->
      let r = RB.create ~capacity:cap in
      List.iter (RB.push r) xs;
      let expected =
        let n = List.length xs in
        List.filteri (fun i _ -> i >= n - cap) xs
      in
      RB.to_list r = expected)

(* ------------------------------------------------------------------ *)
(* Fenwick                                                             *)
(* ------------------------------------------------------------------ *)

let test_fw_basics () =
  let f = FW.create ~size:8 in
  FW.add f 0 3;
  FW.add f 3 5;
  FW.add f 7 2;
  Alcotest.(check int) "prefix 0" 3 (FW.prefix_sum f 0);
  Alcotest.(check int) "prefix 3" 8 (FW.prefix_sum f 3);
  Alcotest.(check int) "total" 10 (FW.total f);
  Alcotest.(check int) "range" 7 (FW.range_sum f 1 7);
  Alcotest.(check int) "get" 5 (FW.get f 3);
  Alcotest.(check int) "search first" 0 (FW.search f 1);
  Alcotest.(check int) "search mid" 3 (FW.search f 4);
  Alcotest.(check int) "search last" 7 (FW.search f 10);
  Alcotest.check_raises "search too much" Not_found (fun () ->
      ignore (FW.search f 11));
  FW.clear f;
  Alcotest.(check int) "cleared" 0 (FW.total f)

let prop_fw_prefix =
  QCheck.Test.make ~count:300 ~name:"fenwick prefix sums match naive"
    QCheck.(list (pair (int_bound 15) (int_range 0 20)))
    (fun updates ->
      let f = FW.create ~size:16 in
      let naive = Array.make 16 0 in
      List.iter
        (fun (i, v) ->
          FW.add f i v;
          naive.(i) <- naive.(i) + v)
        updates;
      List.for_all
        (fun i ->
          let expected = Array.fold_left ( + ) 0 (Array.sub naive 0 (i + 1)) in
          FW.prefix_sum f i = expected)
        (List.init 16 Fun.id))

let prop_fw_search =
  QCheck.Test.make ~count:300 ~name:"fenwick search finds the k-th rank"
    QCheck.(list (pair (int_bound 15) (int_range 1 5)))
    (fun updates ->
      QCheck.assume (updates <> []);
      let f = FW.create ~size:16 in
      List.iter (fun (i, v) -> FW.add f i v) updates;
      let total = FW.total f in
      List.for_all
        (fun k ->
          let i = FW.search f k in
          FW.prefix_sum f i >= k && (i = 0 || FW.prefix_sum f (i - 1) < k))
        (List.init total (fun i -> i + 1)))

let () =
  let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests) in
  Alcotest.run "dstruct"
    [
      ( "binary_heap",
        [
          Alcotest.test_case "empty" `Quick test_bh_empty;
          Alcotest.test_case "ordering" `Quick test_bh_order;
          Alcotest.test_case "of_array" `Quick test_bh_of_array;
          Alcotest.test_case "clear+grow" `Quick test_bh_clear_and_grow;
          Alcotest.test_case "initial capacity honored" `Quick
            test_bh_initial_capacity;
          Alcotest.test_case "fold/iter" `Quick test_bh_fold_iter;
          Alcotest.test_case "peek_min_opt" `Quick test_bh_peek;
        ] );
      qsuite "binary_heap_props" [ prop_bh_sorts; prop_bh_heapify ];
      ( "indexed_heap",
        [
          Alcotest.test_case "basics" `Quick test_ih_basics;
          Alcotest.test_case "update inserts" `Quick test_ih_update_inserts;
          Alcotest.test_case "out of range" `Quick test_ih_out_of_range;
          Alcotest.test_case "smallest" `Quick test_ih_smallest;
          Alcotest.test_case "peek_min_opt" `Quick test_ih_peek;
          Alcotest.test_case "clear" `Quick test_ih_clear;
        ] );
      qsuite "indexed_heap_props" [ prop_ih_model ];
      ( "int_heap",
        [ Alcotest.test_case "basics" `Quick test_inth_basics ] );
      qsuite "int_heap_props" [ prop_inth_sorts ];
      ( "int_indexed_heap",
        [
          Alcotest.test_case "basics" `Quick test_iih_basics;
          Alcotest.test_case "smallest_into" `Quick test_iih_smallest_into;
        ] );
      qsuite "int_indexed_heap_props"
        [
          prop_iih_differential;
          prop_iih_storm;
          prop_iih_smallest_matches_sort;
        ];
      ( "pairing_heap",
        [
          Alcotest.test_case "basics" `Quick test_ph_basics;
          Alcotest.test_case "merge" `Quick test_ph_merge;
        ] );
      qsuite "pairing_heap_props" [ prop_ph_sorts ];
      ( "deque",
        [
          Alcotest.test_case "fifo" `Quick test_dq_fifo;
          Alcotest.test_case "lifo" `Quick test_dq_lifo;
          Alcotest.test_case "errors" `Quick test_dq_errors;
          Alcotest.test_case "map/fold" `Quick test_dq_map_fold;
        ] );
      qsuite "deque_props" [ prop_dq_model ];
      ( "ring_buffer",
        [ Alcotest.test_case "basics" `Quick test_rb_basics ] );
      qsuite "ring_buffer_props" [ prop_rb_window ];
      ( "fenwick",
        [ Alcotest.test_case "basics" `Quick test_fw_basics ] );
      qsuite "fenwick_props" [ prop_fw_prefix; prop_fw_search ];
    ]
