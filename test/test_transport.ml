(* The socket transport's contracts:

   - a Unix-domain client sees the same greeting/ack lines as a pipe
     client, and acked ops survive a graceful stop into the journal;
   - named sessions are multiplexed: two clients addressing the same
     session observe one op stream, in order;
   - admission control refuses (busy, nothing enqueued) when the
     per-session queue is full, and read-only commands shed under
     backlog pressure while mutations keep flowing;
   - an abrupt client disconnect never hurts the server or the
     session other clients share;
   - a command deadline wedges the session (no journal append from the
     abandoned attempt) and the next command restores it;
   - shutdown executes every queued command before closing. *)

module Transport = Rrs_service.Transport
module Server = Rrs_service.Server
module Metrics = Rrs_obs.Metrics

let temp_dir =
  let counter = ref 0 in
  fun name ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rrs_transport_%s_%d_%d" name (Unix.getpid ()) !counter)
    in
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    dir

let rm_rf dir =
  let rec go path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> go (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then go dir

(* ---- a tiny blocking client --------------------------------------- *)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec try_connect n =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 0 ->
        Unix.sleepf 0.02;
        try_connect (n - 1)
  in
  try_connect 250;
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let send c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let recv c =
  match In_channel.input_line c.ic with
  | Some l -> l
  | None -> Alcotest.fail "connection closed early"

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* ---- server harness ----------------------------------------------- *)

type server = {
  sock : string;
  stop : bool Atomic.t;
  handle : (Transport.stats, string) result Domain.t;
}

let start ?(limits = Transport.default_limits) ?plan config dir =
  let sock = Filename.concat dir "rrs.sock" in
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let handle =
    Domain.spawn (fun () ->
        let body () =
          Transport.run ~limits
            ~stop:(fun () -> Atomic.get stop)
            ~on_ready:(fun _ -> Atomic.set ready true)
            config (Transport.Unix_socket sock)
        in
        match plan with
        | None -> body ()
        | Some plan -> Rrs_fault.with_plan plan body)
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  { sock; stop; handle }

let finish server =
  Atomic.set server.stop true;
  match Domain.join server.handle with
  | Ok stats -> stats
  | Error e -> Alcotest.failf "transport: %s" e

let config ?checkpoint_dir () =
  {
    Server.default_config with
    n = 4;
    delta = 2;
    delay = Array.make 4 6;
    checkpoint_dir;
    checkpoint_every = 4;
  }

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ---- tests -------------------------------------------------------- *)

let test_roundtrip () =
  let dir = temp_dir "roundtrip" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let ckpt = Filename.concat dir "state" in
  Unix.mkdir ckpt 0o755;
  let server = start (config ~checkpoint_dir:ckpt ()) dir in
  let c = connect server.sock in
  Alcotest.(check bool) "greeting" true (starts_with "ok session" (recv c));
  send c "submit 0 1 5";
  Alcotest.(check bool)
    "submit acked" true
    (starts_with "ok submitted 5 jobs" (recv c));
  send c "step 3";
  Alcotest.(check bool) "step acked" true (starts_with "ok stepped 3" (recv c));
  send c "state";
  let state = recv c in
  Alcotest.(check bool) "state is json" true (starts_with "{" state);
  send c "quit";
  Alcotest.(check bool) "bye" true (starts_with "ok bye" (recv c));
  close_client c;
  let stats = finish server in
  Alcotest.(check int) "one client" 1 stats.Transport.conns_accepted;
  Alcotest.(check int) "four commands" 4 stats.Transport.commands;
  (* acked ops reached the journal: a pipe-mode restart sees them *)
  let code, output =
    let in_path = Filename.temp_file "transport_in" ".txt" in
    let out_path = Filename.temp_file "transport_out" ".txt" in
    Out_channel.with_open_text in_path (fun oc ->
        output_string oc "state\nquit\n");
    let ic = In_channel.open_text in_path in
    let oc = Out_channel.open_text out_path in
    let code =
      Server.serve { (config ~checkpoint_dir:ckpt ()) with retries = 0 } ic oc
    in
    In_channel.close ic;
    Out_channel.close oc;
    let out = In_channel.with_open_text out_path In_channel.input_lines in
    Sys.remove in_path;
    Sys.remove out_path;
    (code, out)
  in
  Alcotest.(check int) "restart exit" 0 code;
  Alcotest.(check bool)
    "restored both acked ops" true
    (List.exists (fun l -> starts_with "ok restored round=3 ops=2" l) output)

let test_multiplex () =
  let dir = temp_dir "multiplex" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let server = start (config ()) dir in
  let a = connect server.sock in
  let b = connect server.sock in
  ignore (recv a);
  ignore (recv b);
  send a "open shared";
  Alcotest.(check bool)
    "fresh named session" true
    (starts_with "ok session name=shared" (recv a));
  send a "submit 0 1 4";
  ignore (recv a);
  send b "attach shared";
  Alcotest.(check bool) "attach" true (starts_with "ok attached shared" (recv b));
  send b "step 2";
  Alcotest.(check bool)
    "b steps the shared session" true
    (starts_with "ok stepped 2 rounds to round 2" (recv b));
  send a "sessions";
  let header = recv a in
  Alcotest.(check bool) "two sessions" true (starts_with "ok sessions 2" header);
  ignore (recv a);
  let shared_line = recv a in
  Alcotest.(check bool)
    "shared shows both clients' ops" true
    (starts_with "ok shared round=2 ops=2" shared_line);
  close_client a;
  close_client b;
  ignore (finish server)

let test_busy_admission () =
  let dir = temp_dir "busy" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* queue_limit 0: every command is refused at admission — the
     degenerate bound proves the refusal path acks nothing *)
  let limits = { Transport.default_limits with queue_limit = 0 } in
  let server = start ~limits (config ()) dir in
  let c = connect server.sock in
  ignore (recv c);
  send c "submit 0 1 5";
  let reply = recv c in
  Alcotest.(check bool)
    "busy, not acked" true
    (starts_with "busy queue session=default" reply);
  close_client c;
  let stats = finish server in
  Alcotest.(check int) "counted busy" 1 stats.Transport.busy;
  Alcotest.(check int) "no command executed" 0 stats.Transport.commands

let test_shed () =
  let dir = temp_dir "shed" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* threshold -1: any backlog sheds read-only commands, while the
     mutation stream keeps flowing *)
  let limits = { Transport.default_limits with shed_threshold = -1 } in
  let server = start ~limits (config ()) dir in
  let c = connect server.sock in
  ignore (recv c);
  send c "state";
  Alcotest.(check bool) "state shed" true (starts_with "busy shed" (recv c));
  send c "submit 0 1 2";
  Alcotest.(check bool)
    "mutation still served" true
    (starts_with "ok submitted" (recv c));
  close_client c;
  let stats = finish server in
  Alcotest.(check int) "counted shed" 1 stats.Transport.shed

let test_abrupt_disconnect () =
  let dir = temp_dir "abrupt" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let server = start (config ()) dir in
  let rude = connect server.sock in
  ignore (recv rude);
  send rude "submit 0 1 3";
  (* vanish without reading the ack *)
  close_client rude;
  let polite = connect server.sock in
  ignore (recv polite);
  send polite "state";
  Alcotest.(check bool)
    "server alive after abrupt disconnect" true
    (starts_with "{" (recv polite));
  close_client polite;
  let stats = finish server in
  Alcotest.(check int) "both clients counted" 2 stats.Transport.conns_accepted

let test_deadline_wedge () =
  let dir = temp_dir "deadline" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* a Delay injection at the engine's own probe point makes the step
     overshoot its 50 ms budget deterministically *)
  let plan =
    Rrs_fault.plan
      [ Rrs_fault.delay_on "engine.round" (Rrs_fault.Nth 1) ~seconds:0.5 ]
  in
  let limits =
    { Transport.default_limits with command_deadline = Some 0.05 }
  in
  let server = start ~limits ~plan (config ()) dir in
  let c = connect server.sock in
  ignore (recv c);
  send c "step 1";
  let reply = recv c in
  Alcotest.(check bool)
    "deadline reply"
    true
    (starts_with "err deadline" reply);
  (* the next command restores the wedged session from scratch
     (ephemeral: no journal, so a fresh greeting-equivalent state) *)
  send c "submit 0 1 2";
  Alcotest.(check bool)
    "restored session serves again" true
    (starts_with "ok submitted" (recv c));
  close_client c;
  let stats = finish server in
  Alcotest.(check bool) "wedge counted" true (stats.Transport.wedges >= 1)

let test_shutdown_drains () =
  let dir = temp_dir "drain" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let ckpt = Filename.concat dir "state" in
  Unix.mkdir ckpt 0o755;
  let server = start (config ~checkpoint_dir:ckpt ()) dir in
  let c = connect server.sock in
  ignore (recv c);
  (* queue a burst, then stop the server without reading a byte:
     every queued command must still execute and reach the journal *)
  for i = 1 to 8 do
    send c (Printf.sprintf "submit 0 %d 1" (i mod 4))
  done;
  Unix.sleepf 0.2;
  Atomic.set server.stop true;
  let stats =
    match Domain.join server.handle with
    | Ok stats -> stats
    | Error e -> Alcotest.failf "transport: %s" e
  in
  close_client c;
  Alcotest.(check int) "all queued commands executed" 8 stats.Transport.commands;
  let journal = Filename.concat ckpt "journal.jsonl" in
  let lines = In_channel.with_open_text journal In_channel.input_lines in
  Alcotest.(check int) "all ops journaled" 9 (List.length lines)

let () =
  Alcotest.run "transport"
    [
      ( "socket",
        [
          Alcotest.test_case "round-trip + durable acks" `Quick test_roundtrip;
          Alcotest.test_case "multiplexed sessions" `Quick test_multiplex;
          Alcotest.test_case "abrupt disconnect" `Quick test_abrupt_disconnect;
        ] );
      ( "overload",
        [
          Alcotest.test_case "busy at admission" `Quick test_busy_admission;
          Alcotest.test_case "shed read-only" `Quick test_shed;
          Alcotest.test_case "deadline wedges, reopen restores" `Quick
            test_deadline_wedge;
          Alcotest.test_case "shutdown drains the queue" `Quick
            test_shutdown_drains;
        ] );
    ]
