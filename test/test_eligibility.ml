(* Tests for the shared counter / eligibility / timestamp machinery
   (paper Section 3.1, "common aspects"). *)

open Rrs_core

let arr round color count = { Types.round; color; count }

(* Drive the machinery through a real engine run with a spy policy that
   can also decide what to cache (a constant distinct set). *)
let run_with_spy ?(cached = fun _ -> false) ~delta ~delay arrivals observe =
  let instance = Instance.create ~delta ~delay ~arrivals () in
  let elig = ref None in
  let factory (i : Instance.t) ~n =
    let e = Eligibility.create i in
    elig := Some e;
    {
      Policy.name = "spy";
      reconfigure =
        (fun view ->
          Eligibility.begin_round e ~view ~in_cache:cached;
          observe view.round e;
          Array.make n Types.black);
    }
  in
  let cfg = Engine.config ~n:1 () in
  ignore (Engine.run cfg instance factory);
  Option.get !elig

(* The typed change feed driving Ranking.Index: every transition shows
   up, in a consistent order, and listeners observe post-mutation
   state. *)
let test_change_feed () =
  (* delta=2, delay=4, one uncached color: the round-0 batch of 2 wraps
     and makes it eligible; at the round-4 boundary its epoch closes
     (uncached), so it flips back to ineligible *)
  let instance =
    Instance.create ~delta:2 ~delay:[| 4 |] ~arrivals:[ arr 0 0 2 ] ()
  in
  let log = ref [] in
  let consistent = ref true in
  let factory (i : Instance.t) ~n =
    let e = Eligibility.create i in
    Eligibility.on_change e (fun change ->
        log := change :: !log;
        (* listeners run after the mutation *)
        match change with
        | Eligibility.Became_eligible c ->
            consistent := !consistent && Eligibility.is_eligible e c
        | Eligibility.Became_ineligible c ->
            consistent := !consistent && not (Eligibility.is_eligible e c)
        | _ -> ());
    {
      Policy.name = "spy";
      reconfigure =
        (fun view ->
          Eligibility.begin_round e ~view ~in_cache:(fun _ -> false);
          Array.make n Types.black);
    }
  in
  ignore (Engine.run (Engine.config ~n:1 ()) instance factory);
  let changes = List.rev !log in
  let index_of change =
    let rec go i = function
      | [] -> Alcotest.failf "change not emitted"
      | c :: _ when c = change -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 changes
  in
  Alcotest.(check bool) "post-mutation state" true !consistent;
  Alcotest.(check bool) "wrap precedes eligibility" true
    (index_of (Eligibility.Wrapped 0)
    < index_of (Eligibility.Became_eligible 0));
  Alcotest.(check bool) "eligible precedes epoch close" true
    (index_of (Eligibility.Became_eligible 0)
    < index_of (Eligibility.Became_ineligible 0));
  Alcotest.(check bool) "timestamp bumped at the boundary" true
    (index_of (Eligibility.Timestamp_bumped 0)
    < index_of (Eligibility.Became_ineligible 0));
  Alcotest.(check bool) "boundary moves the color deadline" true
    (List.mem (Eligibility.Deadline_moved 0) changes)

let test_counter_accumulates () =
  (* delta=5, batches of 2 at rounds 0,4,8: wrap at round 8 (2+2+2=6>=5) *)
  let log = ref [] in
  let e =
    run_with_spy ~delta:5 ~delay:[| 4 |]
      [ arr 0 0 2; arr 4 0 2; arr 8 0 2 ]
      (fun round e ->
        log := (round, Eligibility.counter e 0, Eligibility.is_eligible e 0) :: !log)
  in
  ignore e;
  let at r = List.assoc r (List.map (fun (r, c, el) -> (r, (c, el))) !log) in
  Alcotest.(check (pair int bool)) "round 0: cnt 2, ineligible" (2, false) (at 0);
  Alcotest.(check (pair int bool)) "round 4: cnt 4, ineligible" (4, false) (at 4);
  Alcotest.(check (pair int bool)) "round 8: wrapped to 1, eligible" (1, true) (at 8)

let test_wrap_resets_modulo () =
  (* a huge batch wraps once: cnt = count mod delta (observed mid-run,
     before the end-of-epoch reset at the color's next multiple) *)
  let observed = ref [] in
  let e =
    run_with_spy ~delta:4 ~delay:[| 8 |] [ arr 0 0 11 ] (fun round e ->
        observed :=
          (round, (Eligibility.counter e 0, Eligibility.is_eligible e 0))
          :: !observed)
  in
  Alcotest.(check (pair int bool))
    "round 0: cnt = 11 mod 4, eligible" (3, true) (List.assoc 0 !observed);
  Alcotest.(check int) "one wrap event" 1 (Eligibility.wrap_events_total e);
  (* at round 8 the color is uncached, so the epoch ends and cnt resets *)
  Alcotest.(check int) "end-of-epoch reset" 0 (Eligibility.counter e 0);
  Alcotest.(check bool) "ineligible at end" false (Eligibility.is_eligible e 0)

let test_ineligible_transition_out_of_cache () =
  (* eligible color not in cache turns ineligible at its next multiple *)
  let states = ref [] in
  let e =
    run_with_spy ~delta:2 ~delay:[| 4 |] [ arr 0 0 2 ] (fun round e ->
        states := (round, Eligibility.is_eligible e 0) :: !states)
  in
  Alcotest.(check bool) "eligible at round 0" true (List.assoc 0 !states);
  Alcotest.(check bool) "ineligible at round 4" false (List.assoc 4 !states);
  Alcotest.(check int) "counter reset" 0 (Eligibility.counter e 0);
  Alcotest.(check int) "one epoch ended" 1 (Eligibility.epochs_ended e 0)

let test_cached_color_stays_eligible () =
  let e =
    run_with_spy
      ~cached:(fun c -> c = 0)
      ~delta:2 ~delay:[| 4 |] [ arr 0 0 2 ]
      (fun _ _ -> ())
  in
  Alcotest.(check bool) "still eligible (cached)" true
    (Eligibility.is_eligible e 0);
  Alcotest.(check int) "no epoch end" 0 (Eligibility.epochs_ended e 0)

let test_timestamp_snapshots () =
  (* wrap at round 0; the timestamp becomes 0 only at the next multiple *)
  let ts = ref [] in
  let e =
    run_with_spy
      ~cached:(fun c -> c = 0)
      ~delta:2 ~delay:[| 4 |]
      [ arr 0 0 2; arr 8 0 2 ]
      (fun round e -> ts := (round, Eligibility.timestamp e 0) :: !ts)
  in
  ignore e;
  Alcotest.(check int) "round 0: no wrap visible" (-1) (List.assoc 0 !ts);
  Alcotest.(check int) "round 4: sees wrap@0" 0 (List.assoc 4 !ts);
  Alcotest.(check int) "round 8: still wrap@0" 0 (List.assoc 8 !ts);
  (* the wrap at round 8 becomes visible at round 12 *)
  Alcotest.(check int) "round 12: sees wrap@8" 8 (List.assoc 12 !ts)

let test_color_deadline_updates () =
  let dd = ref [] in
  ignore
    (run_with_spy ~delta:10 ~delay:[| 4 |] [ arr 0 0 1 ] (fun round e ->
         dd := (round, Eligibility.color_deadline e 0) :: !dd));
  Alcotest.(check int) "dd at round 0" 4 (List.assoc 0 !dd);
  Alcotest.(check int) "dd at round 2 unchanged" 4 (List.assoc 2 !dd);
  Alcotest.(check int) "dd at round 4" 8 (List.assoc 4 !dd)

let test_drop_classification () =
  (* jobs dropped before the color ever wraps are ineligible drops;
     delta=5 so the 3 jobs never make the color eligible *)
  let e =
    run_with_spy ~delta:5 ~delay:[| 2 |] [ arr 0 0 3 ] (fun _ _ -> ())
  in
  Alcotest.(check int) "ineligible drops" 3 (Eligibility.ineligible_drops e);
  Alcotest.(check int) "eligible drops" 0 (Eligibility.eligible_drops e);
  (* now delta=2: the batch wraps at round 0, so the drop at round 2 is
     an eligible drop *)
  let e2 =
    run_with_spy ~delta:2 ~delay:[| 2 |] [ arr 0 0 3 ] (fun _ _ -> ())
  in
  Alcotest.(check int) "eligible drops" 3 (Eligibility.eligible_drops e2);
  Alcotest.(check int) "ineligible drops" 0 (Eligibility.ineligible_drops e2)

let test_epochs_total_counts_active () =
  (* color 0 completes one epoch and starts another; color 1 never has
     arrivals and contributes no epoch *)
  let e =
    run_with_spy ~delta:2 ~delay:[| 4; 4 |]
      [ arr 0 0 2; arr 8 0 2 ]
      (fun _ _ -> ())
  in
  (* epoch 0 ends at round 4 (eligible, uncached); arrivals at round 8
     start an active epoch, which ends at round 12 *)
  Alcotest.(check int) "epochs ended" 2 (Eligibility.epochs_ended e 0);
  Alcotest.(check int) "total epochs" 2 (Eligibility.epochs_total e)

let test_eligible_colors_sorted () =
  let e =
    run_with_spy ~delta:1 ~delay:[| 2; 2; 2 |]
      [ arr 0 2 1; arr 0 0 1 ]
      (fun _ _ -> ())
  in
  (* delta=1: every batch wraps immediately; colors 0 and 2 eligible
     until their multiples pass (uncached -> ineligible at round 2) *)
  ignore e;
  let e2 =
    run_with_spy
      ~cached:(fun _ -> true)
      ~delta:1 ~delay:[| 2; 2; 2 |]
      [ arr 0 2 1; arr 0 0 1 ]
      (fun _ _ -> ())
  in
  Alcotest.(check (list int)) "sorted eligible" [ 0; 2 ]
    (Eligibility.eligible_colors e2)

let test_idempotent_within_round () =
  (* two mini-rounds must not double-process arrivals *)
  let instance = Instance.create ~delta:2 ~delay:[| 4 |] ~arrivals:[ arr 0 0 3 ] () in
  let elig = ref None in
  let factory (i : Instance.t) ~n =
    let e = Eligibility.create i in
    elig := Some e;
    {
      Policy.name = "spy";
      reconfigure =
        (fun view ->
          Eligibility.begin_round e ~view ~in_cache:(fun _ -> false);
          Array.make n Types.black);
    }
  in
  let cfg = Engine.config ~n:1 ~mini_rounds:2 () in
  ignore (Engine.run cfg instance factory);
  let e = Option.get !elig in
  Alcotest.(check int) "single wrap despite two mini-rounds" 1
    (Eligibility.wrap_events_total e)

(* regression: listeners used to live in a list appended with [l @ [f]]
   (quadratic registration) and be iterated via [List.rev] per event
   (per-event allocation); they are now stored once in registration
   order — every event must still see all listeners, first-registered
   first *)
let test_listener_registration_order () =
  let instance =
    Instance.create ~delta:2 ~delay:[| 4; 4 |]
      ~arrivals:[ arr 0 0 4; arr 1 1 2 ]
      ()
  in
  let calls = ref [] in
  let factory (i : Instance.t) ~n =
    let e = Eligibility.create i in
    List.iter
      (fun tag ->
        Eligibility.on_timestamp_update e (fun color ts ->
            calls := (tag, color, ts) :: !calls);
        Eligibility.on_change e (fun _ -> calls := (tag, -1, -1) :: !calls))
      [ "first"; "second"; "third" ];
    {
      Policy.name = "spy";
      reconfigure =
        (fun view ->
          Eligibility.begin_round e ~view ~in_cache:(fun _ -> false);
          Array.make n Types.black);
    }
  in
  ignore (Engine.run (Engine.config ~n:1 ()) instance factory);
  let events = List.rev !calls in
  Alcotest.(check bool) "listeners fired" true (events <> []);
  Alcotest.(check int) "all three saw every event" 0
    (List.length events mod 3);
  (* consecutive triples carry identical payloads in registration order *)
  let rec check = function
    | (("first", c1, t1) as _a)
      :: ("second", c2, t2)
      :: ("third", c3, t3)
      :: rest ->
        Alcotest.(check bool) "same payload across the triple" true
          (c1 = c2 && c2 = c3 && t1 = t2 && t2 = t3);
        check rest
    | [] -> ()
    | _ -> Alcotest.fail "listeners out of registration order"
  in
  check events

let () =
  Alcotest.run "eligibility"
    [
      ( "counters",
        [
          Alcotest.test_case "accumulation" `Quick test_counter_accumulates;
          Alcotest.test_case "change feed" `Quick test_change_feed;
          Alcotest.test_case "modulo wrap" `Quick test_wrap_resets_modulo;
        ] );
      ( "eligibility",
        [
          Alcotest.test_case "ineligible transition" `Quick
            test_ineligible_transition_out_of_cache;
          Alcotest.test_case "cached stays eligible" `Quick
            test_cached_color_stays_eligible;
          Alcotest.test_case "eligible_colors sorted" `Quick
            test_eligible_colors_sorted;
        ] );
      ( "timestamps",
        [
          Alcotest.test_case "snapshot at multiples" `Quick
            test_timestamp_snapshots;
          Alcotest.test_case "color deadline" `Quick test_color_deadline_updates;
        ] );
      ( "analysis counters",
        [
          Alcotest.test_case "drop classification" `Quick
            test_drop_classification;
          Alcotest.test_case "epoch counting" `Quick
            test_epochs_total_counts_active;
          Alcotest.test_case "mini-round idempotency" `Quick
            test_idempotent_within_round;
          Alcotest.test_case "listener registration order" `Quick
            test_listener_registration_order;
        ] );
    ]
