(* Tests that the validator accepts correct schedules and rejects every
   kind of tampering. *)

open Rrs_core

let arr round color count = { Types.round; color; count }

let instance =
  Instance.create ~delta:2 ~delay:[| 4; 4 |]
    ~arrivals:[ arr 0 0 6; arr 0 1 2; arr 4 0 1 ]
    ()

let good_schedule () =
  let cfg = Engine.config ~n:2 ~record_schedule:true () in
  let r = Engine.run cfg instance (Static_policy.static [ 0; 1 ]) in
  (r, Option.get r.schedule)

let test_accepts_engine_schedule () =
  let r, sched = good_schedule () in
  let report = Validator.check instance sched in
  if not report.ok then
    Alcotest.failf "valid schedule rejected: %a" Validator.pp_report report;
  Alcotest.(check bool) "cost agrees" true
    (Cost.equal report.recomputed_cost r.cost);
  Alcotest.(check int) "executed" r.executed report.executed

let tamper sched f =
  { sched with Schedule.events = Array.map f sched.Schedule.events }

let expect_rejected name report =
  if report.Validator.ok then Alcotest.failf "%s: tampering not detected" name

let test_rejects_wrong_color_execution () =
  let _, sched = good_schedule () in
  let bad =
    tamper sched (fun (r, e) ->
        match e with
        | Schedule.Execute x when x.resource = 0 ->
            (r, Schedule.Execute { x with color = 1 })
        | _ -> (r, e))
  in
  expect_rejected "wrong color" (Validator.check instance bad)

let test_rejects_double_execution () =
  let _, sched = good_schedule () in
  (* duplicate every execution event on resource 0 *)
  let events =
    Array.to_list sched.Schedule.events
    |> List.concat_map (fun (r, e) ->
           match e with
           | Schedule.Execute x when x.resource = 0 -> [ (r, e); (r, e) ]
           | _ -> [ (r, e) ])
    |> Array.of_list
  in
  expect_rejected "double execution"
    (Validator.check instance { sched with Schedule.events })

let test_rejects_phantom_reconfigure () =
  let _, sched = good_schedule () in
  let bad =
    tamper sched (fun (r, e) ->
        match e with
        | Schedule.Reconfigure x when x.resource = 1 ->
            (r, Schedule.Reconfigure { x with from_color = 0 })
        | _ -> (r, e))
  in
  expect_rejected "wrong from_color" (Validator.check instance bad)

let test_rejects_missing_drops_strict () =
  let _, sched = good_schedule () in
  let events =
    Array.of_list
      (List.filter
         (fun (_, e) -> match e with Schedule.Drop _ -> false | _ -> true)
         (Array.to_list sched.Schedule.events))
  in
  let stripped = { sched with Schedule.events } in
  (* strict mode notices missing drop declarations... *)
  (match Validator.check ~strict_drops:true instance stripped with
  | { ok = true; dropped = d; _ } when d > 0 ->
      Alcotest.fail "strict mode ignored missing drops"
  | _ -> ());
  (* ...lenient mode does not care about declarations *)
  let lenient = Validator.check ~strict_drops:false instance stripped in
  Alcotest.(check bool) "lenient ok" true lenient.ok

let test_rejects_out_of_range () =
  let _, sched = good_schedule () in
  let bad =
    tamper sched (fun (r, e) ->
        match e with
        | Schedule.Execute x -> (r, Schedule.Execute { x with resource = 9 })
        | _ -> (r, e))
  in
  expect_rejected "bad resource" (Validator.check instance bad)

let test_rejects_execution_after_deadline () =
  (* hand-build a schedule that executes a color-0 job at round 4 (its
     deadline): must be rejected, the drop phase precedes execution *)
  let sched =
    {
      Schedule.n = 1;
      mini_rounds = 1;
      events =
        [|
          ( 0,
            Schedule.Reconfigure
              {
                resource = 0;
                mini_round = 0;
                from_color = Types.black;
                to_color = 1;
              } );
          (4, Schedule.Execute { resource = 0; mini_round = 0; color = 1 });
        |];
    }
  in
  (* color 1's jobs arrive at round 0 with deadline 4 *)
  expect_rejected "deadline violation"
    (Validator.check ~strict_drops:false instance sched)

let test_rejects_self_reconfigure () =
  let sched =
    {
      Schedule.n = 1;
      mini_rounds = 1;
      events =
        [|
          ( 0,
            Schedule.Reconfigure
              {
                resource = 0;
                mini_round = 0;
                from_color = Types.black;
                to_color = Types.black;
              } );
        |];
    }
  in
  expect_rejected "self reconfigure"
    (Validator.check ~strict_drops:false instance sched)

(* lenient mode: drop declarations are ignored entirely, but the drop
   cost is still recomputed from the instance's own expirations and
   infeasible executions are still rejected *)
let strip_drops sched =
  let events =
    Array.of_list
      (List.filter
         (fun (_, e) -> match e with Schedule.Drop _ -> false | _ -> true)
         (Array.to_list sched.Schedule.events))
  in
  { sched with Schedule.events }

let test_lenient_recomputes_drop_cost () =
  let r, sched = good_schedule () in
  let report = Validator.check ~strict_drops:false instance (strip_drops sched) in
  Alcotest.(check bool) "ok without declarations" true report.ok;
  Alcotest.(check bool) "drop cost recomputed, not read from events" true
    (Cost.equal report.recomputed_cost r.cost);
  Alcotest.(check int) "executed" r.executed report.executed

let test_lenient_still_rejects_infeasible () =
  let _, sched = good_schedule () in
  let bad =
    tamper (strip_drops sched) (fun (r, e) ->
        match e with
        | Schedule.Execute x when x.resource = 0 ->
            (r, Schedule.Execute { x with color = 1 })
        | _ -> (r, e))
  in
  expect_rejected "lenient wrong color"
    (Validator.check ~strict_drops:false instance bad)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_pp_report_valid () =
  let report, _ =
    let r, sched = good_schedule () in
    (Validator.check instance sched, r)
  in
  let rendered = Format.asprintf "%a" Validator.pp_report report in
  Alcotest.(check bool) "starts with valid" true
    (String.starts_with ~prefix:"valid:" rendered);
  Alcotest.(check bool) "counts present" true
    (contains rendered "executed" && contains rendered "dropped")

let test_pp_report_invalid () =
  let _, sched = good_schedule () in
  let bad =
    tamper sched (fun (r, e) ->
        match e with
        | Schedule.Execute x -> (r, Schedule.Execute { x with resource = 9 })
        | _ -> (r, e))
  in
  let report = Validator.check instance bad in
  let rendered = Format.asprintf "%a" Validator.pp_report report in
  Alcotest.(check bool) "header" true
    (contains rendered
       (Printf.sprintf "INVALID (%d violations)"
          (List.length report.Validator.violations)));
  Alcotest.(check bool) "violation lines carry rounds" true
    (contains rendered "[round ")

let test_check_result_detects_cost_mismatch () =
  let r, _ = good_schedule () in
  let lied = { r with Engine.cost = Cost.make ~reconfig:0 ~drop:0 } in
  let report = Validator.check_result instance lied in
  expect_rejected "cost lie" report

let test_check_result_requires_schedule () =
  let cfg = Engine.config ~n:2 () in
  let r = Engine.run cfg instance (Static_policy.static [ 0; 1 ]) in
  match Validator.check_result instance r with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing schedule accepted"

let () =
  Alcotest.run "validator"
    [
      ( "acceptance",
        [ Alcotest.test_case "engine schedule" `Quick test_accepts_engine_schedule ]
      );
      ( "rejection",
        [
          Alcotest.test_case "wrong color" `Quick
            test_rejects_wrong_color_execution;
          Alcotest.test_case "double execution" `Quick
            test_rejects_double_execution;
          Alcotest.test_case "phantom reconfigure" `Quick
            test_rejects_phantom_reconfigure;
          Alcotest.test_case "missing drops" `Quick
            test_rejects_missing_drops_strict;
          Alcotest.test_case "out of range" `Quick test_rejects_out_of_range;
          Alcotest.test_case "after deadline" `Quick
            test_rejects_execution_after_deadline;
          Alcotest.test_case "self reconfigure" `Quick
            test_rejects_self_reconfigure;
        ] );
      ( "lenient mode",
        [
          Alcotest.test_case "recomputes drop cost" `Quick
            test_lenient_recomputes_drop_cost;
          Alcotest.test_case "still rejects infeasible" `Quick
            test_lenient_still_rejects_infeasible;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "pp_report valid" `Quick test_pp_report_valid;
          Alcotest.test_case "pp_report invalid" `Quick test_pp_report_invalid;
        ] );
      ( "check_result",
        [
          Alcotest.test_case "cost mismatch" `Quick
            test_check_result_detects_cost_mismatch;
          Alcotest.test_case "requires schedule" `Quick
            test_check_result_requires_schedule;
        ] );
    ]
