(* Behavioral tests for the three reconfiguration schemes: ΔLRU, EDF,
   ΔLRU-EDF (paper Sections 3.1.1-3.1.3). *)

open Rrs_core

let arr round color count = { Types.round; color; count }

let mk ?(delta = 2) ~delay arrivals = Instance.create ~delta ~delay ~arrivals ()

let run ?(n = 4) instance policy =
  Engine.run (Engine.config ~n ~record_schedule:true ()) instance policy

(* count occurrences of each color in a cache assignment *)
let occurrences cache =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun c ->
      if c <> Types.black then
        Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    cache;
  tbl

let test_take () =
  Alcotest.(check (list int)) "prefix" [ 1; 2 ] (Policy.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "whole list" [ 1; 2; 3 ] (Policy.take 9 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "zero" [] (Policy.take 0 [ 1; 2 ]);
  Alcotest.(check (list int)) "negative" [] (Policy.take (-3) [ 1; 2 ]);
  Alcotest.(check (list int)) "empty" [] (Policy.take 4 [])

let test_replication_invariant () =
  (* every cached color occupies exactly two locations, for all three
     algorithms, at the end of a busy run *)
  let i =
    mk ~delta:1 ~delay:[| 2; 2; 4; 4 |]
      [ arr 0 0 2; arr 0 1 2; arr 0 2 3; arr 0 3 3; arr 4 2 2 ]
  in
  List.iter
    (fun policy ->
      let r = run i policy in
      Hashtbl.iter
        (fun color count ->
          if count <> 2 then
            Alcotest.failf "color %d cached %d times (want 2)" color count)
        (occurrences r.final_cache))
    [ Delta_lru.policy; Edf_policy.policy; Lru_edf.policy ]

let test_never_eligible_never_cached () =
  (* fewer than delta jobs: the color never becomes eligible and is never
     cached (Lemma 3.1's mechanism) -> zero reconfiguration cost *)
  let i = mk ~delta:5 ~delay:[| 4 |] [ arr 0 0 2; arr 4 0 2 ] in
  List.iter
    (fun policy ->
      let r = run i policy in
      Alcotest.(check int) "no reconfig" 0 r.cost.reconfig;
      Alcotest.(check int) "all dropped" 4 r.dropped)
    [ Delta_lru.policy; Edf_policy.policy; Lru_edf.policy ]

let test_dlru_ignores_idleness () =
  (* ΔLRU's defect: it caches by recency even when the recent colors are
     idle.  Two short colors wrap every window and stay recent; the long
     color 2 has a huge pile but a stale timestamp.  With n=4 (two
     distinct slots) ΔLRU pins both shorts and starves the long color. *)
  let i =
    mk ~delta:2 ~delay:[| 4; 4; 64 |]
      (arr 0 2 64
      :: List.concat_map
           (fun w -> [ arr (w * 4) 0 2; arr (w * 4) 1 2 ])
           (List.init 16 Fun.id))
  in
  let r = run ~n:4 i Delta_lru.policy in
  (* the long color is never executed *)
  Alcotest.(check int) "long color starved" 0 r.executions_by_color.(2);
  Alcotest.(check int) "long pile dropped" 64 r.drops_by_color.(2)

let test_edf_uses_idle_capacity () =
  (* same workload: EDF executes the long color whenever shorts are idle *)
  let i =
    mk ~delta:2 ~delay:[| 4; 4; 64 |]
      (arr 0 2 64
      :: List.concat_map
           (fun w -> [ arr (w * 4) 0 2; arr (w * 4) 1 2 ])
           (List.init 16 Fun.id))
  in
  let r = run ~n:4 i Edf_policy.policy in
  Alcotest.(check bool) "long color served" true
    (r.executions_by_color.(2) > 32)

let test_lru_edf_balances () =
  (* ΔLRU-EDF with n=8 (2 LRU + 2 EDF distinct slots) serves both the
     recent shorts and the deadline-driven long color *)
  let i =
    mk ~delta:2 ~delay:[| 4; 4; 64 |]
      (arr 0 2 64
      :: List.concat_map
           (fun w -> [ arr (w * 4) 0 2; arr (w * 4) 1 2 ])
           (List.init 16 Fun.id))
  in
  let r = run ~n:8 i Lru_edf.policy in
  Alcotest.(check int) "no drops at all" 0 r.dropped

let test_edf_prefers_earliest_deadline () =
  (* two nonidle colors, one distinct slot (n=2): EDF must pick the one
     with the earlier deadline *)
  let i = mk ~delta:1 ~delay:[| 8; 2 |] [ arr 0 0 8; arr 0 1 2 ] in
  let r = run ~n:2 i Edf_policy.policy in
  (* color 1 (deadline 2) must be served before its deadline *)
  Alcotest.(check int) "urgent color executed" 2 r.executions_by_color.(1)

let test_mid_window_swap () =
  (* n=4: 2 distinct slots for 3 nonidle colors of 2 jobs each.  A cached
     color finishes its 2 jobs in one round (two copies), so the EDF part
     can swap in the third color mid-window and nothing need drop. *)
  let i =
    mk ~delta:1 ~delay:[| 2; 2; 2 |]
      [ arr 0 0 2; arr 0 1 2; arr 0 2 2; arr 2 0 2 ]
  in
  let r = run ~n:4 i Lru_edf.policy in
  Alcotest.(check int) "no drops thanks to the swap" 0 r.dropped;
  Alcotest.(check int) "all executed" 8 r.executed;
  (* serving 3 colors through 2 slots forces at least 3 recolorings of
     distinct slots (x2 replication) *)
  Alcotest.(check bool) "swap actually happened" true (r.reconfigurations >= 6)

let test_stable_assign_no_spurious_reconfig () =
  (* a color that stays desired must not move slots (no churn cost) *)
  let current = [| 3; 1; Types.black |] in
  let next = Policy.stable_assign ~current ~desired:[ 1; 5 ] in
  Alcotest.(check int) "1 kept in place" 1 next.(1);
  Alcotest.(check bool) "5 placed" true (Array.exists (( = ) 5) next);
  (* slot 0's occupant 3 is not desired: it is the eviction target *)
  Alcotest.(check int) "3 evicted for 5" 5 next.(0)

let test_stable_assign_errors () =
  (match
     Policy.stable_assign ~current:[| 0 |] ~desired:[ 1; 2 ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized desired accepted");
  match Policy.stable_assign ~current:[| 0; 1 |] ~desired:[ 2; 2 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate desired accepted"

let test_replicate () =
  let full = Policy.replicate ~distinct:[| 4; Types.black |] ~n:4 in
  Alcotest.(check (list int)) "mirrored" [ 4; Types.black; 4; Types.black ]
    (Array.to_list full);
  match Policy.replicate ~distinct:[| 0 |] ~n:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad replication size accepted"

let test_n_validation () =
  let i = mk ~delay:[| 2 |] [] in
  (match Lru_edf.make i ~n:6 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "lru-edf must require n multiple of 4");
  (match Delta_lru.make i ~n:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dlru must require even n");
  match Edf_policy.make_seq i ~n:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "seq-edf must require n >= 1"

let test_quotas () =
  Alcotest.(check int) "lru slots" 2 (Lru_edf.lru_slots ~n:8);
  Alcotest.(check int) "distinct capacity" 4 (Lru_edf.distinct_capacity ~n:8)

let test_seq_edf_full_capacity () =
  (* Seq-EDF uses all n slots for distinct colors (no replication) *)
  let i = mk ~delta:1 ~delay:[| 2; 2 |] [ arr 0 0 2; arr 0 1 2 ] in
  let r = run ~n:2 i Edf_policy.seq_policy in
  let occ = occurrences r.final_cache in
  Alcotest.(check int) "two distinct colors" 2 (Hashtbl.length occ);
  Alcotest.(check int) "no drops" 0 r.dropped

let test_ds_seq_edf_double_speed () =
  (* DS-Seq-EDF = Seq-EDF under a double-speed engine *)
  let i = mk ~delta:1 ~delay:[| 2 |] [ arr 0 0 4; arr 2 0 4 ] in
  let uni = Engine.run (Engine.config ~n:1 ()) i Edf_policy.seq_policy in
  let ds = Engine.run (Engine.config ~n:1 ~mini_rounds:2 ()) i Edf_policy.seq_policy in
  Alcotest.(check int) "uni-speed drops" 4 uni.dropped;
  Alcotest.(check int) "double-speed executes all" 0 ds.dropped

let () =
  Alcotest.run "policies"
    [
      ( "shared mechanics",
        [
          Alcotest.test_case "take" `Quick test_take;
          Alcotest.test_case "replication invariant" `Quick
            test_replication_invariant;
          Alcotest.test_case "sub-delta colors never cached" `Quick
            test_never_eligible_never_cached;
          Alcotest.test_case "stable_assign" `Quick
            test_stable_assign_no_spurious_reconfig;
          Alcotest.test_case "stable_assign errors" `Quick
            test_stable_assign_errors;
          Alcotest.test_case "replicate" `Quick test_replicate;
          Alcotest.test_case "n validation" `Quick test_n_validation;
          Alcotest.test_case "quotas" `Quick test_quotas;
        ] );
      ( "scheme contrasts",
        [
          Alcotest.test_case "dlru ignores idleness" `Quick
            test_dlru_ignores_idleness;
          Alcotest.test_case "edf uses idle capacity" `Quick
            test_edf_uses_idle_capacity;
          Alcotest.test_case "lru-edf balances" `Quick test_lru_edf_balances;
          Alcotest.test_case "edf earliest deadline" `Quick
            test_edf_prefers_earliest_deadline;
          Alcotest.test_case "mid-window swap" `Quick test_mid_window_swap;
        ] );
      ( "seq-edf",
        [
          Alcotest.test_case "full capacity" `Quick test_seq_edf_full_capacity;
          Alcotest.test_case "double speed" `Quick test_ds_seq_edf_double_speed;
        ] );
    ]
